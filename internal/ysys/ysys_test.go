package ysys

import (
	"math"
	"math/rand"
	"testing"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/quorum"
)

func TestGeometry(t *testing.T) {
	s := New(5)
	if s.Universe() != 15 {
		t.Fatalf("n = %d, want 15", s.Universe())
	}
	if New(7).Universe() != 28 {
		t.Fatal("k=7 should have 28 processes")
	}
	// Interior process 4 (row 2, col 1) has six neighbours.
	if got := len(s.neighbors[4]); got != 6 {
		t.Fatalf("interior degree = %d, want 6", got)
	}
	// Apex has two.
	if got := len(s.neighbors[0]); got != 2 {
		t.Fatalf("apex degree = %d, want 2", got)
	}
}

// TestPaperTables23Y reproduces the Y columns of Tables 2 and 3 (the paper
// quotes them from Kuo–Huang; our board reproduces the 15-process values
// exactly).
func TestPaperTables23Y(t *testing.T) {
	tests := []struct {
		k    int
		p    float64
		want float64
	}{
		{5, 0.1, 0.000745},
		{5, 0.2, 0.017603},
		{5, 0.3, 0.093599},
		{5, 0.5, 0.500000},
	}
	for _, tt := range tests {
		counts := analysis.TransversalCounts(New(tt.k))
		got := analysis.Failure(counts, tt.p)
		if math.Abs(got-tt.want) > 1e-6 {
			t.Errorf("Y(%d) p=%.1f: F = %.6f, paper %.6f", tt.k, tt.p, got, tt.want)
		}
	}
}

// TestSelfDualAtHalf: the game-of-Y theorem makes the system self-dual, so
// F(1/2) = 1/2 exactly.
func TestSelfDualAtHalf(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		counts := analysis.TransversalCounts(New(k))
		if got := analysis.Failure(counts, 0.5); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("k=%d: F(0.5) = %.12f", k, got)
		}
	}
}

func TestTable4Sizes(t *testing.T) {
	s := New(5)
	if s.MinQuorumSize() != 5 || s.MaxQuorumSize() != 6 {
		t.Errorf("Y(15) sizes (%d,%d), want (5,6)", s.MinQuorumSize(), s.MaxQuorumSize())
	}
}

func TestIntersectionProperty(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		if err := quorum.CheckPairwiseIntersection(New(k)); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestAvailabilityConsistency(t *testing.T) {
	// Available must agree with "some minimal quorum is contained in live".
	for _, k := range []int{3, 4, 5} {
		if err := quorum.CheckAvailabilityConsistency(New(k)); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestPickConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{4, 5} {
		if err := quorum.CheckPickConsistency(New(k), rng, 300); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestPickReturnsMinimalYSet(t *testing.T) {
	s := New(6)
	rng := rand.New(rand.NewSource(8))
	live := bitset.Universe(s.Universe())
	for i := 0; i < 100; i++ {
		q, err := s.Pick(rng, live)
		if err != nil {
			t.Fatal(err)
		}
		if !s.isYSet(q) {
			t.Fatalf("picked %v is not a Y-set", q)
		}
		q.ForEach(func(v int) {
			q.Remove(v)
			if s.Available(q) {
				t.Fatalf("picked quorum is not minimal (can drop %d from %v∪{%d})", v, q, v)
			}
			q.Add(v)
		})
	}
}

// TestSidesAreQuorums: each full side of the board is a minimal quorum of
// size k.
func TestSidesAreQuorums(t *testing.T) {
	s := New(5)
	for _, side := range [][]int{s.left, s.right, s.bottom} {
		set := bitset.New(s.Universe())
		for _, v := range side {
			set.Add(v)
		}
		if !s.isYSet(set) {
			t.Fatalf("side %v is not a Y-set", set)
		}
	}
}

// TestComplementDuality: for any live set, exactly one of live and its
// complement contains a Y-set (the game-of-Y theorem) — checked
// exhaustively on small boards.
func TestComplementDuality(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5} {
		s := New(k)
		n := s.Universe()
		for mask := uint64(0); mask < uint64(1)<<uint(n); mask++ {
			live := bitset.FromWord(n, mask)
			a := s.Available(live)
			b := s.Available(live.Complement())
			if a == b {
				t.Fatalf("k=%d: Y-duality violated on %v (both %t)", k, live, a)
			}
		}
	}
}

// TestWordPredicateAgrees cross-checks the bit-parallel fast path against
// the reference predicate on every subset of a small board and random
// subsets of larger ones.
func TestWordPredicateAgrees(t *testing.T) {
	s := New(4)
	for mask := uint64(0); mask < 1<<10; mask++ {
		set := bitset.FromWord(10, mask)
		if s.Available(set) != s.AvailableWord(mask) {
			t.Fatalf("disagreement on %010b", mask)
		}
	}
	big := New(7)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		mask := rng.Uint64() & ((1 << 28) - 1)
		set := bitset.FromWord(28, mask)
		if big.Available(set) != big.AvailableWord(mask) {
			t.Fatalf("disagreement on %028b", mask)
		}
	}
}
