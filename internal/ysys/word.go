package ysys

import (
	"math/bits"

	"hquorum/internal/analysis"
)

// AvailableWord is the allocation-free availability fast path used by the
// exhaustive enumerator (2ⁿ subsets for the paper's 28-process board). It
// flood-fills live components with bit-parallel neighbor masks. It panics
// for boards beyond 64 processes (the masks are single words).
func (s *System) AvailableWord(live uint64) bool {
	if s.neighborMask == nil {
		panic("ysys: AvailableWord needs a board of at most 64 processes")
	}
	remaining := live
	for remaining != 0 {
		seed := remaining & (^remaining + 1) // lowest set bit
		comp := s.flood(seed, live)
		if comp&s.leftMask != 0 && comp&s.rightMask != 0 && comp&s.bottomMask != 0 {
			return true
		}
		remaining &^= comp
	}
	return false
}

// flood returns the live component containing seed.
func (s *System) flood(seed, live uint64) uint64 {
	comp := seed
	frontier := seed
	for frontier != 0 {
		var grow uint64
		for f := frontier; f != 0; f &= f - 1 {
			grow |= s.neighborMask[bits.TrailingZeros64(f)]
		}
		frontier = grow & live &^ comp
		comp |= frontier
	}
	return comp
}

var _ analysis.WordAvailability = (*System)(nil)
