package ysys

import (
	"math/bits"

	"hquorum/internal/analysis"
)

// AvailableWord is the allocation-free availability fast path used by the
// exhaustive enumerator (2ⁿ subsets for the paper's 28-process board).
//
// Boards with k ≤ 8 rows use a padded layout where cell (r, c) sits at bit
// r·k+c, so every neighbor relation is a fixed shift and a whole frontier
// expands in ~8 word ops: the left-to-right component sweep becomes two
// multi-source flood fills (grow everything from the left side, then grow
// the right-touching part of that within itself and test the bottom) with
// no per-bit loop at all. Larger boards up to 64 processes fall back to the
// per-component neighbor-mask flood. It panics beyond 64 processes.
func (s *System) AvailableWord(live uint64) bool {
	if s.pad != nil {
		p := s.pad.spread(live)
		a := s.pad.flood(p, p&s.pad.left)
		if a&s.pad.right == 0 || a&s.pad.bottom == 0 {
			return false
		}
		return s.pad.flood(a, a&s.pad.right)&s.pad.bottom != 0
	}
	if s.neighborMask == nil {
		panic("ysys: AvailableWord needs a board of at most 64 processes")
	}
	remaining := live
	for remaining != 0 {
		seed := remaining & (^remaining + 1) // lowest set bit
		comp := s.flood(seed, live)
		if comp&s.leftMask != 0 && comp&s.rightMask != 0 && comp&s.bottomMask != 0 {
			return true
		}
		remaining &^= comp
	}
	return false
}

// flood returns the live component containing seed (per-bit fallback).
func (s *System) flood(seed, live uint64) uint64 {
	comp := seed
	frontier := seed
	for frontier != 0 {
		var grow uint64
		for f := frontier; f != 0; f &= f - 1 {
			grow |= s.neighborMask[bits.TrailingZeros64(f)]
		}
		frontier = grow & live &^ comp
		comp |= frontier
	}
	return comp
}

// yPad is the padded-layout flood plan for boards with k ≤ 8 rows
// (k² ≤ 64 padded bits).
type yPad struct {
	k      uint
	rows   []yPadRow
	left   uint64 // padded masks of the three sides
	right  uint64
	bottom uint64
}

// yPadRow moves packed row r (bits off…off+r) to padded bit r·k.
type yPadRow struct {
	off  uint
	mask uint64 // row mask at bit 0
	sh   uint   // padded row offset r·k
}

func buildYPad(k int) *yPad {
	p := &yPad{k: uint(k)}
	for r := 0; r < k; r++ {
		off := uint(r * (r + 1) / 2)
		p.rows = append(p.rows, yPadRow{
			off:  off,
			mask: uint64(1)<<uint(r+1) - 1,
			sh:   uint(r * k),
		})
		p.left |= 1 << uint(r*k)    // (r, 0)
		p.right |= 1 << uint(r*k+r) // (r, r)
	}
	for c := 0; c < k; c++ {
		p.bottom |= 1 << uint((k-1)*k+c)
	}
	return p
}

// spread converts a packed live mask to the padded layout.
func (p *yPad) spread(live uint64) uint64 {
	var out uint64
	for i := range p.rows {
		r := &p.rows[i]
		out |= (live >> r.off & r.mask) << r.sh
	}
	return out
}

// flood grows seed to its full reachable set within valid. The six Y
// neighbors of padded bit b are b±1, b±k and b±(k+1); shifts that leave a
// cell's row land on padded positions outside the triangular valid region
// (or beyond bit 63) and are erased by the &valid.
func (p *yPad) flood(valid, seed uint64) uint64 {
	comp := seed
	k := p.k
	for {
		grow := comp<<1 | comp>>1 | comp<<k | comp>>k | comp<<(k+1) | comp>>(k+1)
		next := comp | grow&valid
		if next == comp {
			return comp
		}
		comp = next
	}
}

// CacheKey implements analysis.CacheKeyer.
func (s *System) CacheKey() string { return "y:" + s.name }

var (
	_ analysis.WordAvailability = (*System)(nil)
	_ analysis.CacheKeyer       = (*System)(nil)
)
