package kcoterie

import (
	"fmt"
	"math/bits"
	"strings"

	"hquorum/internal/analysis"
)

var (
	_ analysis.WordAvailability = (*KMajority)(nil)
	_ analysis.CacheKeyer       = (*KMajority)(nil)
	_ analysis.WordAvailability = (*Partitioned)(nil)
	_ analysis.CacheKeyer       = (*Partitioned)(nil)
)

// AvailableWord is Available on a single-word live mask.
func (s *KMajority) AvailableWord(live uint64) bool {
	return bits.OnesCount64(live) >= s.q
}

// CacheKey implements analysis.CacheKeyer.
func (s *KMajority) CacheKey() string {
	return fmt.Sprintf("kmaj:n%d:q%d", s.n, s.q)
}

// wordSub is the sub-coterie word view precomputed by NewPartitioned:
// shift/mask extract the slice, and fast is non-nil when the sub-coterie
// has its own word path.
type wordSub struct {
	shift uint
	mask  uint64
	fast  analysis.WordAvailability
}

// AvailableWord is Available on a single-word live mask. It requires every
// sub-coterie to implement the word fast path (all constructions in this
// repository do for n ≤ 64) and panics otherwise or when the combined
// universe exceeds 64.
func (p *Partitioned) AvailableWord(live uint64) bool {
	if p.wordSubs == nil {
		panic(fmt.Sprintf("kcoterie: AvailableWord needs word-capable sub-coteries within 64 processes (universe %d)", p.n))
	}
	for i := range p.wordSubs {
		w := &p.wordSubs[i]
		if w.fast.AvailableWord((live >> w.shift) & w.mask) {
			return true
		}
	}
	return false
}

// CacheKey implements analysis.CacheKeyer: the concatenation of the
// sub-coterie keys in slice order, or "" (uncacheable) when any sub-coterie
// lacks a key.
func (p *Partitioned) CacheKey() string {
	var b strings.Builder
	b.WriteString("kpart:")
	for i, sub := range p.subs {
		k, ok := sub.(analysis.CacheKeyer)
		if !ok {
			return ""
		}
		key := k.CacheKey()
		if key == "" {
			return ""
		}
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(key)
	}
	return b.String()
}
