// Package kcoterie implements k-coteries — quorum systems for k-mutual
// exclusion, the generalization Kuo & Huang's geometric paper (the source
// of the paper's Y system) constructs alongside ordinary coteries.
//
// A k-coterie allows up to k processes in the critical section at once:
//
//   - k-intersection: among any k+1 quorums, some two intersect (so k+1
//     simultaneous holders are impossible — each holder owns exclusive
//     grants from every member of its quorum);
//   - k-availability: there exist k pairwise disjoint quorums (so k
//     processes can hold the resource simultaneously).
//
// Two constructions are provided: the k-majority (all sets of
// ⌊n/(k+1)⌋+1 processes) and the partition construction (k disjoint
// ordinary coteries side by side). Both implement quorum.System, so the
// Maekawa-style protocol of package dmutex runs k-mutual exclusion with
// them unchanged — its arbiters grant one request at a time, which is
// exactly the k-coterie safety argument.
package kcoterie

import (
	"fmt"
	"math/rand"

	"hquorum/internal/bitset"
	"hquorum/internal/quorum"
)

// KMajority is the threshold k-coterie: every set of ⌊n/(k+1)⌋+1
// processes is a quorum. Any k+1 quorums hold (k+1)·q > n process slots,
// so two share a process; and k·q ≤ n, so k disjoint quorums exist.
type KMajority struct {
	n, k, q int
}

var _ quorum.System = (*KMajority)(nil)

// NewKMajority returns the k-majority over n processes. It requires
// 1 ≤ k < n and that k quorums of ⌊n/(k+1)⌋+1 processes fit disjointly
// (k-availability); e.g. n=15, k=4 admits no uniform-size 4-coterie.
func NewKMajority(n, k int) (*KMajority, error) {
	if k < 1 || n <= k {
		return nil, fmt.Errorf("kcoterie: invalid n=%d k=%d", n, k)
	}
	q := n/(k+1) + 1
	if k*q > n {
		return nil, fmt.Errorf("kcoterie: no uniform k-majority for n=%d k=%d (k·%d > n)", n, k, q)
	}
	return &KMajority{n: n, k: k, q: q}, nil
}

// Name implements quorum.System.
func (s *KMajority) Name() string { return fmt.Sprintf("%d-majority(%d)", s.k, s.n) }

// Universe implements quorum.System.
func (s *KMajority) Universe() int { return s.n }

// K returns the concurrency level.
func (s *KMajority) K() int { return s.k }

// Available implements quorum.System (one quorum available).
func (s *KMajority) Available(live bitset.Set) bool { return live.Count() >= s.q }

// AvailableK reports whether j pairwise disjoint quorums fit in live.
func (s *KMajority) AvailableK(live bitset.Set, j int) bool {
	return live.Count() >= j*s.q
}

// Pick implements quorum.System.
func (s *KMajority) Pick(rng *rand.Rand, live bitset.Set) (bitset.Set, error) {
	alive := live.Indices()
	if len(alive) < s.q {
		return bitset.Set{}, quorum.ErrNoQuorum
	}
	rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	out := bitset.New(s.n)
	for _, id := range alive[:s.q] {
		out.Add(id)
	}
	return out, nil
}

// MinQuorumSize implements quorum.System.
func (s *KMajority) MinQuorumSize() int { return s.q }

// MaxQuorumSize implements quorum.System.
func (s *KMajority) MaxQuorumSize() int { return s.q }

// Partitioned is the partition k-coterie: k ordinary coteries over
// disjoint process slices, with every sub-coterie quorum a quorum of the
// whole. Any k+1 quorums include two from the same slice (pigeonhole),
// which intersect; one quorum per slice gives k disjoint ones.
type Partitioned struct {
	subs     []quorum.System
	offsets  []int
	n        int
	wordSubs []wordSub // per-slice word views (nil unless all subs support them)
}

var _ quorum.System = (*Partitioned)(nil)

// NewPartitioned builds the partition k-coterie from k ≥ 1 sub-coteries.
func NewPartitioned(subs ...quorum.System) (*Partitioned, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("kcoterie: no sub-coteries")
	}
	p := &Partitioned{subs: subs, offsets: make([]int, len(subs))}
	for i, sub := range subs {
		if sub == nil {
			return nil, fmt.Errorf("kcoterie: nil sub-coterie %d", i)
		}
		p.offsets[i] = p.n
		p.n += sub.Universe()
	}
	if p.n <= 64 {
		p.wordSubs = make([]wordSub, len(subs))
		for i, sub := range subs {
			fast, ok := sub.(interface{ AvailableWord(uint64) bool })
			if !ok {
				p.wordSubs = nil
				break
			}
			p.wordSubs[i] = wordSub{
				shift: uint(p.offsets[i]),
				mask:  uint64(1)<<uint(sub.Universe()) - 1,
				fast:  fast,
			}
		}
	}
	return p, nil
}

// Name implements quorum.System.
func (p *Partitioned) Name() string {
	return fmt.Sprintf("partitioned-%d-coterie(%d)", len(p.subs), p.n)
}

// Universe implements quorum.System.
func (p *Partitioned) Universe() int { return p.n }

// K returns the concurrency level (the number of partitions).
func (p *Partitioned) K() int { return len(p.subs) }

// slice extracts sub-coterie i's live view.
func (p *Partitioned) slice(live bitset.Set, i int) bitset.Set {
	sub := bitset.New(p.subs[i].Universe())
	for j := 0; j < p.subs[i].Universe(); j++ {
		if live.Contains(p.offsets[i] + j) {
			sub.Add(j)
		}
	}
	return sub
}

// Available implements quorum.System (some slice has a quorum).
func (p *Partitioned) Available(live bitset.Set) bool {
	for i := range p.subs {
		if p.subs[i].Available(p.slice(live, i)) {
			return true
		}
	}
	return false
}

// AvailableK reports whether j pairwise disjoint quorums exist in live
// (at least j slices individually available).
func (p *Partitioned) AvailableK(live bitset.Set, j int) bool {
	count := 0
	for i := range p.subs {
		if p.subs[i].Available(p.slice(live, i)) {
			count++
			if count >= j {
				return true
			}
		}
	}
	return false
}

// Pick implements quorum.System: a quorum from a uniformly random
// available slice.
func (p *Partitioned) Pick(rng *rand.Rand, live bitset.Set) (bitset.Set, error) {
	var candidates []int
	for i := range p.subs {
		if p.subs[i].Available(p.slice(live, i)) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return bitset.Set{}, quorum.ErrNoQuorum
	}
	i := candidates[rng.Intn(len(candidates))]
	subQ, err := p.subs[i].Pick(rng, p.slice(live, i))
	if err != nil {
		return bitset.Set{}, err
	}
	out := bitset.New(p.n)
	subQ.ForEach(func(j int) { out.Add(p.offsets[i] + j) })
	return out, nil
}

// MinQuorumSize implements quorum.System.
func (p *Partitioned) MinQuorumSize() int {
	min := p.subs[0].MinQuorumSize()
	for _, sub := range p.subs[1:] {
		if m := sub.MinQuorumSize(); m < min {
			min = m
		}
	}
	return min
}

// MaxQuorumSize implements quorum.System.
func (p *Partitioned) MaxQuorumSize() int {
	max := 0
	for _, sub := range p.subs {
		if m := sub.MaxQuorumSize(); m > max {
			max = m
		}
	}
	return max
}
