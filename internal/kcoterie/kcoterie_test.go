package kcoterie

import (
	"math/rand"
	"testing"
	"time"

	"hquorum/internal/bitset"
	"hquorum/internal/cluster"
	"hquorum/internal/dmutex"
	"hquorum/internal/htriang"
	"hquorum/internal/majority"
	"hquorum/internal/quorum"
)

func TestKMajoritySizes(t *testing.T) {
	tests := []struct{ n, k, q int }{
		{9, 2, 4}, {10, 2, 4}, {15, 2, 6}, {16, 3, 5}, {7, 1, 4},
	}
	for _, tt := range tests {
		s, err := NewKMajority(tt.n, tt.k)
		if err != nil {
			t.Fatal(err)
		}
		if s.MinQuorumSize() != tt.q {
			t.Errorf("n=%d k=%d: quorum %d, want %d", tt.n, tt.k, s.MinQuorumSize(), tt.q)
		}
		// k-intersection: (k+1) quorums exceed the universe.
		if (tt.k+1)*tt.q <= tt.n {
			t.Errorf("n=%d k=%d: k-intersection violated", tt.n, tt.k)
		}
		// k-availability: k disjoint quorums fit.
		if tt.k*tt.q > tt.n {
			t.Errorf("n=%d k=%d: k disjoint quorums do not fit", tt.n, tt.k)
		}
	}
	if _, err := NewKMajority(3, 3); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := NewKMajority(15, 4); err == nil {
		t.Error("infeasible k-majority accepted (k disjoint quorums do not fit)")
	}
	if _, err := NewKMajority(5, 0); err == nil {
		t.Error("k = 0 accepted")
	}
}

// TestKMajorityIsOrdinaryCoterieForK1: the 1-majority is the classic
// majority system.
func TestKMajorityIsOrdinaryCoterieForK1(t *testing.T) {
	s, err := NewKMajority(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref := majority.New(9)
	for mask := uint64(0); mask < 1<<9; mask++ {
		live := bitset.FromWord(9, mask)
		if s.Available(live) != ref.Available(live) {
			t.Fatalf("disagreement with majority on %v", live)
		}
	}
}

func TestPartitioned(t *testing.T) {
	p, err := NewPartitioned(htriang.New(3), htriang.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Universe() != 12 || p.K() != 2 {
		t.Fatalf("universe %d k %d", p.Universe(), p.K())
	}
	// Two disjoint quorums exist on the full universe.
	if !p.AvailableK(bitset.Universe(12), 2) {
		t.Fatal("2 disjoint quorums should exist")
	}
	// Killing one slice leaves 1-availability but not 2.
	live := bitset.Universe(12)
	for i := 0; i < 6; i++ {
		live.Remove(i)
	}
	if !p.Available(live) || p.AvailableK(live, 2) {
		t.Fatal("availability accounting wrong after slice loss")
	}
	rng := rand.New(rand.NewSource(1))
	if err := quorum.CheckPickConsistency(p, rng, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartitioned(); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := NewPartitioned(nil); err == nil {
		t.Error("nil sub-coterie accepted")
	}
}

// TestKIntersectionSampled: no k+1 sampled quorums are pairwise disjoint.
func TestKIntersectionSampled(t *testing.T) {
	systems := []interface {
		quorum.System
		K() int
	}{
		mustKM(t, 9, 2),
		mustKM(t, 16, 3),
		mustPart(t),
	}
	rng := rand.New(rand.NewSource(5))
	for _, sys := range systems {
		live := bitset.Universe(sys.Universe())
		for trial := 0; trial < 300; trial++ {
			qs := make([]bitset.Set, sys.K()+1)
			for i := range qs {
				q, err := sys.Pick(rng, live)
				if err != nil {
					t.Fatal(err)
				}
				qs[i] = q
			}
			pairwiseDisjoint := true
			for i := range qs {
				for j := i + 1; j < len(qs); j++ {
					if qs[i].Intersects(qs[j]) {
						pairwiseDisjoint = false
					}
				}
			}
			if pairwiseDisjoint {
				t.Fatalf("%s: %d pairwise disjoint quorums found", sys.Name(), sys.K()+1)
			}
		}
	}
}

func mustKM(t *testing.T, n, k int) *KMajority {
	t.Helper()
	s, err := NewKMajority(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPart(t *testing.T) *Partitioned {
	t.Helper()
	p, err := NewPartitioned(htriang.New(3), htriang.New(3))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestKMutualExclusion runs the unmodified Maekawa protocol over a
// 2-coterie: at most 2 nodes ever hold the resource simultaneously, and
// concurrency 2 is actually achieved.
func TestKMutualExclusion(t *testing.T) {
	sys := mustKM(t, 9, 2)
	net := cluster.New(cluster.WithSeed(77), cluster.WithLatency(time.Millisecond, 5*time.Millisecond))
	holding := 0
	maxHolding := 0
	var nodes []*dmutex.Node
	for i := 0; i < 9; i++ {
		n, err := dmutex.NewNode(cluster.NodeID(i), dmutex.Config{
			System:   sys,
			Workload: dmutex.Workload{Count: 3, Hold: 4 * time.Millisecond, Think: time.Millisecond},
			OnAcquire: func(id cluster.NodeID, at time.Duration) {
				holding++
				if holding > maxHolding {
					maxHolding = holding
				}
				if holding > 2 {
					t.Fatalf("%d simultaneous holders at %v", holding, at)
				}
			},
			OnRelease: func(cluster.NodeID, time.Duration) { holding-- },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(2 * time.Minute)
	for _, n := range nodes {
		if !n.Done() {
			t.Fatalf("node stuck (entries %d)", n.Entries)
		}
	}
	if maxHolding != 2 {
		t.Fatalf("peak concurrency %d, want 2", maxHolding)
	}
}
