package analysis

import "testing"

func TestCircuitBuilderFolding(t *testing.T) {
	b := NewCircuitBuilder(4)
	x, y := b.Lane(0), b.Lane(1)
	if b.And(True, x) != x || b.And(x, False) != False || b.And(x, x) != x {
		t.Fatal("And constant/duplicate folding broken")
	}
	if b.Or(False, y) != y || b.Or(y, True) != True || b.Or(y, y) != y {
		t.Fatal("Or constant/duplicate folding broken")
	}
	if b.And(x, y) != b.And(y, x) {
		t.Fatal("And not hash-consed under commutation")
	}
	if b.AllOf(0) != True || b.AnyOf(0) != False {
		t.Fatal("empty mask identities broken")
	}
	if b.AllOf(1<<2) != b.Lane(2) {
		t.Fatal("single-bit AllOf should collapse to the lane")
	}
	before := len(b.ops)
	b.AllOf(0b1010)
	b.AllOf(0b1010)
	if len(b.ops) != before+1 {
		t.Fatal("mask ops not hash-consed")
	}
}

func TestCircuitEvalMajorityOfThree(t *testing.T) {
	// maj(a,b,c) = ab ∨ ac ∨ bc over three lanes.
	b := NewCircuitBuilder(3)
	a, c, d := b.Lane(0), b.Lane(1), b.Lane(2)
	maj := b.Or(b.And(a, c), b.Or(b.And(a, d), b.And(c, d)))
	circ := b.Build(maj)
	scratch := make([]uint64, circ.NumRegs())
	// Lane words enumerating all 8 input combinations in bits 0..7.
	lanes := []uint64{0b10101010, 0b11001100, 0b11110000}
	got := circ.Eval(lanes, scratch)
	if want := uint64(0b11101000); got != want {
		t.Fatalf("Eval = %#b, want %#b", got, want)
	}
}

func TestPopCountMasks(t *testing.T) {
	var union uint64
	for k, m := range popCountMask {
		for other := k + 1; other < len(popCountMask); other++ {
			if m&popCountMask[other] != 0 {
				t.Fatal("popcount buckets overlap")
			}
		}
		union |= m
	}
	if union != ^uint64(0) {
		t.Fatal("popcount buckets do not partition 0..63")
	}
}
