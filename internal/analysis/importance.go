package analysis

import (
	"fmt"

	"hquorum/internal/bitset"
)

// Importance computes each node's Birnbaum importance at crash probability
// p: the probability that the node is pivotal,
//
//	Iᵢ(p) = P(system available | i up) − P(system available | i down),
//
// by one 2ⁿ⁻¹ enumeration per node over the states of the other nodes.
// Nodes with high importance are the construction's structural hot spots —
// for the h-T-grid, for example, the boundary line carries far more
// importance than the interior. The universe must not exceed 26 nodes.
func Importance(sys Availability, p float64) []float64 {
	n := sys.Universe()
	if n > 26 {
		panic(fmt.Sprintf("analysis: importance enumeration over %d nodes is infeasible", n))
	}
	q := 1 - p
	out := make([]float64, n)
	live := bitset.New(n)
	for i := 0; i < n; i++ {
		// Enumerate the other n-1 nodes' states; bit j of mask maps to node
		// j (skipping i).
		others := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, j)
			}
		}
		diff := 0.0
		for mask := uint64(0); mask < uint64(1)<<uint(n-1); mask++ {
			live.Clear()
			prob := 1.0
			for b, j := range others {
				if mask&(1<<uint(b)) != 0 {
					live.Add(j)
					prob *= q
				} else {
					prob *= p
				}
			}
			up := false
			down := sys.Available(live)
			if !down {
				// Only the "i up" state can differ when the system is down
				// without i; with i down it stays down (monotonicity).
				live.Add(i)
				up = sys.Available(live)
			} else {
				up = true
			}
			if up && !down {
				diff += prob
			}
		}
		out[i] = diff
	}
	return out
}
