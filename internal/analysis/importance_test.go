package analysis

import (
	"math"
	"testing"

	"hquorum/internal/bitset"
)

// singletonOr is available iff node 0 is alive (node 1 irrelevant).
type singletonOr struct{}

func (singletonOr) Universe() int               { return 2 }
func (singletonOr) Available(l bitset.Set) bool { return l.Contains(0) }

func TestImportanceSingleton(t *testing.T) {
	imp := Importance(singletonOr{}, 0.3)
	if math.Abs(imp[0]-1) > 1e-12 {
		t.Fatalf("critical node importance %v, want 1", imp[0])
	}
	if math.Abs(imp[1]) > 1e-12 {
		t.Fatalf("irrelevant node importance %v, want 0", imp[1])
	}
}

func TestImportanceMajority(t *testing.T) {
	// 2-of-3 majority: node i is pivotal iff exactly one of the other two
	// is up: I = 2pq.
	sys := threshold{n: 3, m: 2}
	p := 0.2
	imp := Importance(sys, p)
	want := 2 * p * (1 - p)
	for i, v := range imp {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("node %d importance %v, want %v", i, v, want)
		}
	}
}

// TestImportanceDecomposition checks the Birnbaum identity
// F(p) = Σ states … via the pivotal decomposition at one node:
// A(p) = q·A(1_i) + p·A(0_i), so A(1_i) − A(0_i) = I_i.
func TestImportanceDecomposition(t *testing.T) {
	sys := threshold{n: 7, m: 4}
	p := 0.35
	counts := TransversalCounts(sys)
	avail := 1 - Failure(counts, p)
	imp := Importance(sys, p)
	// Conditional availabilities via the decomposition.
	// A = q·Aup + p·Adown and Aup − Adown = I ⟹ Aup = A + p·I.
	up := avail + p*imp[0]
	down := avail - (1-p)*imp[0]
	if up < down {
		t.Fatal("monotonicity violated")
	}
	recombined := (1-p)*up + p*down
	if math.Abs(recombined-avail) > 1e-12 {
		t.Fatalf("decomposition mismatch: %v vs %v", recombined, avail)
	}
}
