package analysis

import "math/rand"

// bernoulliWord returns 64 independent Bernoulli(q) bits. It compares, in
// all 64 lanes at once, a uniform variate U against the binary expansion of
// q, most significant bit first: lane i stays undecided while the bits of
// Uᵢ match those of q, and is decided the first time they differ (Uᵢ < q
// exactly when Uᵢ's bit is 0 where q's bit is 1). Each round consumes one
// rng.Uint64 and decides each undecided lane with probability 1/2, so the
// expected cost is ~2 words of randomness for 64 variates — versus 64
// Float64 calls for the naive loop.
func bernoulliWord(rng *rand.Rand, q float64) uint64 {
	var result uint64
	undecided := ^uint64(0)
	x := q
	// 64 rounds bound the tail: a lane still undecided afterwards (prob
	// 2⁻⁶⁴ each) resolves to 0, a bias far below float64 resolution.
	for k := 0; k < 64 && undecided != 0; k++ {
		x *= 2
		r := rng.Uint64()
		if x >= 1 {
			// q's next bit is 1: lanes whose U-bit is 0 are decided < q.
			x--
			result |= undecided &^ r
			undecided &= r
		} else {
			// q's next bit is 0: lanes whose U-bit is 1 are decided > q.
			undecided &^= r
		}
		if x == 0 {
			// q is dyadic and fully consumed; remaining expansion is all
			// zeros, so still-undecided lanes have U ≥ q → bit 0.
			break
		}
	}
	return result
}
