package analysis

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"hquorum/internal/bitset"
)

// threshold is a tiny m-of-n system used as a reference.
type threshold struct{ n, m int }

func (t threshold) Universe() int                  { return t.n }
func (t threshold) Available(live bitset.Set) bool { return live.Count() >= t.m }

// thresholdWord adds the word fast path.
type thresholdWord struct{ threshold }

func (t thresholdWord) AvailableWord(live uint64) bool {
	return bits.OnesCount64(live) >= t.m
}

func TestTransversalCountsThreshold(t *testing.T) {
	// For an m-of-n system, a failed set is a transversal iff it has more
	// than n-m members: a_i = C(n,i) for i > n-m, 0 otherwise.
	sys := threshold{n: 7, m: 4}
	counts := TransversalCounts(sys)
	for i := 0; i <= 7; i++ {
		want := uint64(0)
		if i > 3 {
			want = uint64(Binomial(7, i))
		}
		if counts[i] != want {
			t.Errorf("a_%d = %d, want %d", i, counts[i], want)
		}
	}
}

func TestWordFastPathAgrees(t *testing.T) {
	slow := TransversalCounts(threshold{n: 12, m: 7})
	fast := TransversalCounts(thresholdWord{threshold{n: 12, m: 7}})
	for i := range slow {
		if slow[i] != fast[i] {
			t.Fatalf("a_%d: slow %d, fast %d", i, slow[i], fast[i])
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	sys := threshold{n: 11, m: 6}
	base := TransversalCountsParallel(sys, 1)
	for _, workers := range []int{2, 3, 7, 16} {
		got := TransversalCountsParallel(sys, workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: a_%d = %d, want %d", workers, i, got[i], base[i])
			}
		}
	}
}

func TestFailureMatchesBinomial(t *testing.T) {
	sys := threshold{n: 9, m: 5}
	counts := TransversalCounts(sys)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		got := Failure(counts, p)
		want := MajorityFailure(9, 5, p)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%.1f: %v vs %v", p, got, want)
		}
	}
}

func TestFailureBoundaries(t *testing.T) {
	counts := TransversalCounts(threshold{n: 5, m: 3})
	if got := Failure(counts, 0); got != 0 {
		t.Errorf("F(0) = %v", got)
	}
	if got := Failure(counts, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("F(1) = %v", got)
	}
}

// TestQuickFailureMonotone: Fp is nondecreasing in p for any monotone
// system.
func TestQuickFailureMonotone(t *testing.T) {
	counts := TransversalCounts(threshold{n: 8, m: 5})
	f := func(a, b float64) bool {
		pa := math.Abs(a) - math.Floor(math.Abs(a)) // map into [0,1)
		pb := math.Abs(b) - math.Floor(math.Abs(b))
		if pa > pb {
			pa, pb = pb, pa
		}
		return Failure(counts, pa) <= Failure(counts, pb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloConverges(t *testing.T) {
	sys := threshold{n: 10, m: 6}
	counts := TransversalCounts(sys)
	exact := Failure(counts, 0.3)
	res := MonteCarloFailure(sys, 0.3, 60000, rand.New(rand.NewSource(1)))
	if math.Abs(res.Estimate-exact) > 5*res.StdErr+1e-3 {
		t.Fatalf("estimate %v±%v vs exact %v", res.Estimate, res.StdErr, exact)
	}
	if res.Samples != 60000 {
		t.Fatalf("samples %d", res.Samples)
	}
	// Fast path agrees within noise too.
	res2 := MonteCarloFailure(thresholdWord{sys}, 0.3, 60000, rand.New(rand.NewSource(1)))
	if math.Abs(res2.Estimate-exact) > 5*res2.StdErr+1e-3 {
		t.Fatalf("fast estimate %v±%v vs exact %v", res2.Estimate, res2.StdErr, exact)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {29, 14, 77558760},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); math.Abs(got-c.want) > 1e-6*math.Max(1, c.want) {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestEnumerationGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized universe")
		}
	}()
	TransversalCounts(threshold{n: 31, m: 16})
}

func TestFailureAt(t *testing.T) {
	sys := threshold{n: 6, m: 4}
	ps := []float64{0.1, 0.2}
	got := FailureAt(sys, ps)
	counts := TransversalCounts(sys)
	for i, p := range ps {
		if math.Abs(got[i]-Failure(counts, p)) > 1e-15 {
			t.Fatalf("FailureAt mismatch at p=%v", p)
		}
	}
}

func TestCrossover(t *testing.T) {
	// 1-of-2 (read-one) vs 2-of-3 (majority): the singleton-style system is
	// better at every p < 1 — no crossover — while majority(3) vs a single
	// node cross at p where 3p²−2p³ = p, i.e. p = 1/2.
	maj3 := TransversalCounts(threshold{n: 3, m: 2})
	single := TransversalCounts(threshold{n: 1, m: 1})
	p, ok := Crossover(maj3, single, 0.05, 0.95)
	if !ok {
		t.Fatal("expected a crossover")
	}
	if math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("crossover at %v, want 0.5", p)
	}
	// Same system: sign never flips away from zero... use two thresholds
	// with strict domination instead: 2-of-3 vs 3-of-3 never cross inside.
	allOf3 := TransversalCounts(threshold{n: 3, m: 3})
	if _, ok := Crossover(maj3, allOf3, 0.05, 0.95); ok {
		t.Fatal("dominated pair should not cross")
	}
}
