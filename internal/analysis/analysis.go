// Package analysis computes exact and estimated failure probabilities of
// quorum systems.
//
// The exact path follows Proposition 3.1 of the paper: a set T is a size-i
// transversal of system S if it intersects every quorum; with aᵢ the number
// of size-i transversals, the failure probability under independent node
// crash probability p is
//
//	Fₚ(S) = Σᵢ aᵢ pⁱ qⁿ⁻ⁱ,  q = 1-p.
//
// A failed set F is a transversal exactly when the surviving complement
// U\F contains no quorum, so aᵢ is obtained by enumerating all 2ⁿ subsets
// and consulting the system's availability predicate. Enumeration is
// parallelized across goroutines; every configuration in the paper has
// n ≤ 29. For larger universes MonteCarloFailure provides an unbiased
// estimator with a reported standard error.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"hquorum/internal/bitset"
)

// Availability is the minimal view of a quorum system the analyzer needs.
// Available must be safe for concurrent use (all constructions in this
// repository are stateless).
type Availability interface {
	Universe() int
	Available(live bitset.Set) bool
}

// WordAvailability is an optional allocation-free fast path for systems
// over at most 64 nodes: AvailableWord(live) must agree with
// Available(bitset.FromWord(n, live)). The enumerator uses it when
// implemented — graph-reachability systems (Y, Paths) need it to make 2²⁸
// subsets tractable.
type WordAvailability interface {
	AvailableWord(live uint64) bool
}

// TransversalCounts enumerates all subsets of the universe and returns the
// vector a where a[i] is the number of size-i transversals (failed sets that
// leave no live quorum). It panics if the universe exceeds 30 nodes; use
// MonteCarloFailure beyond that.
func TransversalCounts(sys Availability) []uint64 {
	return TransversalCountsParallel(sys, runtime.GOMAXPROCS(0))
}

// TransversalCountsParallel is TransversalCounts with an explicit worker
// count.
func TransversalCountsParallel(sys Availability, workers int) []uint64 {
	n := sys.Universe()
	if n > 30 {
		panic(fmt.Sprintf("analysis: exact enumeration over %d nodes is infeasible", n))
	}
	if workers < 1 {
		workers = 1
	}
	total := uint64(1) << uint(n)
	if workers > 1 && total < 1<<12 {
		workers = 1
	}
	full := uint64(1)<<uint(n) - 1

	counts := make([][]uint64, workers)
	var wg sync.WaitGroup
	chunk := total / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = total
		}
		wg.Add(1)
		go func(w int, lo, hi uint64) {
			defer wg.Done()
			local := make([]uint64, n+1)
			if fast, ok := sys.(WordAvailability); ok {
				for failed := lo; failed < hi; failed++ {
					if !fast.AvailableWord(full &^ failed) {
						local[popcount(failed)]++
					}
				}
			} else {
				live := bitset.New(n)
				for failed := lo; failed < hi; failed++ {
					live.SetWord(full &^ failed)
					if !sys.Available(live) {
						local[popcount(failed)]++
					}
				}
			}
			counts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()

	out := make([]uint64, n+1)
	for _, local := range counts {
		for i, c := range local {
			out[i] += c
		}
	}
	return out
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Failure evaluates Fₚ = Σ aᵢ pⁱ qⁿ⁻ⁱ from precomputed transversal counts.
func Failure(counts []uint64, p float64) float64 {
	n := len(counts) - 1
	q := 1 - p
	// Horner-style evaluation over i with explicit powers; n ≤ 30 so the
	// direct form is well-conditioned.
	sum := 0.0
	for i, a := range counts {
		if a == 0 {
			continue
		}
		sum += float64(a) * math.Pow(p, float64(i)) * math.Pow(q, float64(n-i))
	}
	return sum
}

// FailureAt computes exact failure probabilities of sys at each p in ps with
// a single enumeration pass.
func FailureAt(sys Availability, ps []float64) []float64 {
	counts := TransversalCounts(sys)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Failure(counts, p)
	}
	return out
}

// MonteCarloResult is the outcome of a sampled failure-probability estimate.
type MonteCarloResult struct {
	Estimate float64 // fraction of sampled crash patterns with no live quorum
	StdErr   float64 // binomial standard error of Estimate
	Samples  int
}

// MonteCarloFailure estimates Fₚ by sampling crash patterns: each node fails
// independently with probability p.
func MonteCarloFailure(sys Availability, p float64, samples int, rng *rand.Rand) MonteCarloResult {
	n := sys.Universe()
	hits := 0
	if fast, ok := sys.(WordAvailability); ok && n <= 64 {
		for s := 0; s < samples; s++ {
			var live uint64
			for i := 0; i < n; i++ {
				if rng.Float64() >= p {
					live |= 1 << uint(i)
				}
			}
			if !fast.AvailableWord(live) {
				hits++
			}
		}
	} else {
		live := bitset.New(n)
		for s := 0; s < samples; s++ {
			live.Clear()
			for i := 0; i < n; i++ {
				if rng.Float64() >= p {
					live.Add(i)
				}
			}
			if !sys.Available(live) {
				hits++
			}
		}
	}
	est := float64(hits) / float64(samples)
	return MonteCarloResult{
		Estimate: est,
		StdErr:   math.Sqrt(est * (1 - est) / float64(samples)),
		Samples:  samples,
	}
}

// Binomial returns C(n, k) as a float64 (exact for n ≤ 60).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// MajorityFailure is the closed-form failure probability of an m-of-n
// threshold system: the system fails when fewer than m nodes survive.
func MajorityFailure(n, m int, p float64) float64 {
	q := 1 - p
	f := 0.0
	for k := 0; k < m; k++ { // k survivors, not enough
		f += Binomial(n, k) * math.Pow(q, float64(k)) * math.Pow(p, float64(n-k))
	}
	return f
}

// Crossover locates a crash probability in (lo, hi) where two systems'
// failure probabilities cross, by bisection on F_A(p) − F_B(p) using
// precomputed transversal counts. It returns the crossing point and true,
// or 0 and false when the difference has the same sign at both ends.
func Crossover(countsA, countsB []uint64, lo, hi float64) (float64, bool) {
	diff := func(p float64) float64 { return Failure(countsA, p) - Failure(countsB, p) }
	dlo, dhi := diff(lo), diff(hi)
	if dlo == 0 {
		return lo, true
	}
	if dhi == 0 {
		return hi, true
	}
	if (dlo > 0) == (dhi > 0) {
		return 0, false
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		dm := diff(mid)
		if dm == 0 {
			return mid, true
		}
		if (dm > 0) == (dlo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}
