// Package analysis computes exact and estimated failure probabilities of
// quorum systems.
//
// The exact path follows Proposition 3.1 of the paper: a set T is a size-i
// transversal of system S if it intersects every quorum; with aᵢ the number
// of size-i transversals, the failure probability under independent node
// crash probability p is
//
//	Fₚ(S) = Σᵢ aᵢ pⁱ qⁿ⁻ⁱ,  q = 1-p.
//
// A failed set F is a transversal exactly when the surviving complement
// U\F contains no quorum, so aᵢ is obtained by enumerating all 2ⁿ subsets
// and consulting the system's availability predicate. Enumeration is
// spread over goroutines that steal fixed-size subset blocks from a shared
// atomic counter; every configuration in the paper has n ≤ 29. For larger
// universes MonteCarloFailure provides an unbiased estimator with a
// reported standard error.
//
// Repeated sweeps of the same configuration are memoized: see
// CachedTransversalCounts and the CacheKeyer contract in cache.go.
package analysis

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hquorum/internal/bitset"
)

// Availability is the minimal view of a quorum system the analyzer needs.
// Available must be safe for concurrent use (all constructions in this
// repository are stateless).
type Availability interface {
	Universe() int
	Available(live bitset.Set) bool
}

// WordAvailability is an optional allocation-free fast path for systems
// over at most 64 nodes: AvailableWord(live) must agree with
// Available(bitset.FromWord(n, live)). The enumerator uses it when
// implemented — it is what makes 2²⁸ subsets tractable, so every
// construction in this repository provides it for n ≤ 64.
type WordAvailability interface {
	AvailableWord(live uint64) bool
}

// Progress observes a running enumeration: done blocks finished out of
// total, with elapsed wall time since the sweep started. Callbacks are
// delivered from a single goroutine at a bounded rate plus once on
// completion.
type Progress func(done, total uint64, elapsed time.Duration)

var (
	progressMu sync.Mutex
	progressFn Progress
)

// SetProgress installs a process-wide progress callback for subsequent
// enumerations (nil disables). Short sweeps (< 2 blocks) never report.
func SetProgress(fn Progress) {
	progressMu.Lock()
	progressFn = fn
	progressMu.Unlock()
}

// enumBlockBits sizes the unit of work stealing: workers claim blocks of
// 2¹⁶ consecutive subset values from a shared atomic counter, so skewed
// predicates (cheap rejects in one region, deep recursion in another)
// cannot leave workers idle the way static chunking did.
const enumBlockBits = 16

// TransversalCounts enumerates all subsets of the universe and returns the
// vector a where a[i] is the number of size-i transversals (failed sets that
// leave no live quorum). It panics if the universe exceeds 30 nodes; use
// MonteCarloFailure beyond that.
func TransversalCounts(sys Availability) []uint64 {
	return TransversalCountsParallel(sys, runtime.GOMAXPROCS(0))
}

// TransversalCountsParallel is TransversalCounts with an explicit worker
// count. Workers pull blocks of 2¹⁶ subsets from an atomic counter until
// the space is exhausted, so the result is identical for every worker
// count.
func TransversalCountsParallel(sys Availability, workers int) []uint64 {
	n := sys.Universe()
	if n > 30 {
		panic(fmt.Sprintf("analysis: exact enumeration over %d nodes is infeasible", n))
	}
	if workers < 1 {
		workers = 1
	}
	total := uint64(1) << uint(n)
	blocks := (total + (1 << enumBlockBits) - 1) >> enumBlockBits
	if workers > int(blocks) {
		workers = int(blocks)
	}
	full := uint64(1)<<uint(n) - 1

	var next, done atomic.Uint64
	stop := make(chan struct{})
	var reporter sync.WaitGroup
	progressMu.Lock()
	report := progressFn
	progressMu.Unlock()
	if report != nil && blocks > 1 {
		start := time.Now()
		reporter.Add(1)
		go func() {
			defer reporter.Done()
			tick := time.NewTicker(200 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					report(blocks, blocks, time.Since(start))
					return
				case <-tick.C:
					report(done.Load(), blocks, time.Since(start))
				}
			}
		}()
	}

	var circ *Circuit
	if cs, ok := sys.(CircuitAvailability); ok && n >= 6 {
		circ = cs.AvailabilityCircuit()
	}

	counts := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]uint64, n+1)
			fast, isFast := sys.(WordAvailability)
			var live bitset.Set
			if !isFast {
				live = bitset.New(n)
			}
			var lanes, scratch []uint64
			if circ != nil {
				// Lanes 0..5 of 64 consecutive failed values are fixed
				// patterns; live = complement, so they are set up once.
				lanes = make([]uint64, n)
				for j := 0; j < 6; j++ {
					lanes[j] = ^laneConst[j]
				}
				scratch = make([]uint64, circ.NumRegs())
			}
			for {
				b := next.Add(1) - 1
				if b >= blocks {
					break
				}
				lo := b << enumBlockBits
				hi := lo + 1<<enumBlockBits
				if hi > total {
					hi = total
				}
				switch {
				case circ != nil:
					// 64 subsets per Eval: n ≥ 6 makes every group of 64
					// consecutive failed values start at a multiple of 64,
					// so lane j ≥ 6 is just the broadcast complement of
					// bit j of the base value.
					for base := lo; base < hi; base += 64 {
						for j := 6; j < n; j++ {
							if base>>uint(j)&1 == 0 {
								lanes[j] = ^uint64(0)
							} else {
								lanes[j] = 0
							}
						}
						notAvail := ^circ.Eval(lanes, scratch)
						if notAvail == 0 {
							continue
						}
						pcBase := bits.OnesCount64(base)
						for k := 0; k <= 6; k++ {
							local[pcBase+k] += uint64(bits.OnesCount64(notAvail & popCountMask[k]))
						}
					}
				case isFast:
					for failed := lo; failed < hi; failed++ {
						if !fast.AvailableWord(full &^ failed) {
							local[bits.OnesCount64(failed)]++
						}
					}
				default:
					for failed := lo; failed < hi; failed++ {
						live.SetWord(full &^ failed)
						if !sys.Available(live) {
							local[bits.OnesCount64(failed)]++
						}
					}
				}
				done.Add(1)
			}
			counts[w] = local
		}(w)
	}
	wg.Wait()
	close(stop)
	reporter.Wait()

	out := make([]uint64, n+1)
	for _, local := range counts {
		for i, c := range local {
			out[i] += c
		}
	}
	return out
}

// Failure evaluates Fₚ = Σ aᵢ pⁱ qⁿ⁻ⁱ from precomputed transversal counts.
func Failure(counts []uint64, p float64) float64 {
	n := len(counts) - 1
	q := 1 - p
	// Powers by repeated multiplication: for n ≤ 63 the accumulated
	// relative error stays far below the 1e-12 tolerances used elsewhere,
	// and the tables cost 2n multiplies instead of 2·math.Pow per
	// coefficient.
	var pbuf, qbuf [64]float64
	pp, qp := pbuf[:], qbuf[:]
	if n >= len(pbuf) {
		pp = make([]float64, n+1)
		qp = make([]float64, n+1)
	}
	pp[0], qp[0] = 1, 1
	for i := 1; i <= n; i++ {
		pp[i] = pp[i-1] * p
		qp[i] = qp[i-1] * q
	}
	sum := 0.0
	for i, a := range counts {
		if a == 0 {
			continue
		}
		sum += float64(a) * pp[i] * qp[n-i]
	}
	return sum
}

// FailureAt computes exact failure probabilities of sys at each p in ps.
// The transversal counts come from the process-wide memo cache, so
// repeated calls for the same configuration enumerate only once.
func FailureAt(sys Availability, ps []float64) []float64 {
	counts := CachedTransversalCounts(sys)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = Failure(counts, p)
	}
	return out
}

// MonteCarloResult is the outcome of a sampled failure-probability estimate.
type MonteCarloResult struct {
	Estimate float64 // fraction of sampled crash patterns with no live quorum
	StdErr   float64 // binomial standard error of Estimate
	Samples  int
}

// MonteCarloFailure estimates Fₚ by sampling crash patterns: each node fails
// independently with probability p. Systems with a word fast path are
// sampled with a bit-sliced Bernoulli generator (64 iid survival bits per
// word, ⌊64/n⌋ crash patterns per word) instead of one rng.Float64 call per
// node.
func MonteCarloFailure(sys Availability, p float64, samples int, rng *rand.Rand) MonteCarloResult {
	n := sys.Universe()
	hits := 0
	var circ *Circuit
	if cs, ok := sys.(CircuitAvailability); ok {
		circ = cs.AvailabilityCircuit()
	}
	if circ != nil {
		// Bit-sliced: one bernoulliWord per lane yields 64 iid crash
		// patterns, answered by a single circuit evaluation.
		q := 1 - p
		lanes := make([]uint64, n)
		scratch := make([]uint64, circ.NumRegs())
		for s := 0; s < samples; s += 64 {
			for j := range lanes {
				lanes[j] = bernoulliWord(rng, q)
			}
			notAvail := ^circ.Eval(lanes, scratch)
			if rem := samples - s; rem < 64 {
				notAvail &= uint64(1)<<uint(rem) - 1
			}
			hits += bits.OnesCount64(notAvail)
		}
	} else if fast, ok := sys.(WordAvailability); ok && n <= 64 {
		q := 1 - p // P(bit set) = P(node survives)
		mask := ^uint64(0)
		if n < 64 {
			mask = uint64(1)<<uint(n) - 1
		}
		per := 64 / n
		for s := 0; s < samples; {
			w := bernoulliWord(rng, q)
			for j := 0; j < per && s < samples; j++ {
				if !fast.AvailableWord(w & mask) {
					hits++
				}
				w >>= uint(n)
				s++
			}
		}
	} else {
		live := bitset.New(n)
		for s := 0; s < samples; s++ {
			live.Clear()
			for i := 0; i < n; i++ {
				if rng.Float64() >= p {
					live.Add(i)
				}
			}
			if !sys.Available(live) {
				hits++
			}
		}
	}
	est := float64(hits) / float64(samples)
	return MonteCarloResult{
		Estimate: est,
		StdErr:   math.Sqrt(est * (1 - est) / float64(samples)),
		Samples:  samples,
	}
}

// Binomial returns C(n, k) as a float64 (exact for n ≤ 60).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// MajorityFailure is the closed-form failure probability of an m-of-n
// threshold system: the system fails when fewer than m nodes survive.
func MajorityFailure(n, m int, p float64) float64 {
	q := 1 - p
	var pbuf, qbuf [64]float64
	pp, qp := pbuf[:], qbuf[:]
	if n >= len(pbuf) {
		pp = make([]float64, n+1)
		qp = make([]float64, n+1)
	}
	pp[0], qp[0] = 1, 1
	for i := 1; i <= n; i++ {
		pp[i] = pp[i-1] * p
		qp[i] = qp[i-1] * q
	}
	f := 0.0
	for k := 0; k < m; k++ { // k survivors, not enough
		f += Binomial(n, k) * qp[k] * pp[n-k]
	}
	return f
}

// Crossover locates a crash probability in (lo, hi) where two systems'
// failure probabilities cross, by bisection on F_A(p) − F_B(p) using
// precomputed transversal counts. It returns the crossing point and true,
// or 0 and false when the difference has the same sign at both ends.
func Crossover(countsA, countsB []uint64, lo, hi float64) (float64, bool) {
	diff := func(p float64) float64 { return Failure(countsA, p) - Failure(countsB, p) }
	dlo, dhi := diff(lo), diff(hi)
	if dlo == 0 {
		return lo, true
	}
	if dhi == 0 {
		return hi, true
	}
	if (dlo > 0) == (dhi > 0) {
		return 0, false
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		dm := diff(mid)
		if dm == 0 {
			return mid, true
		}
		if (dm > 0) == (dlo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}
