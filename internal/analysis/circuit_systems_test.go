package analysis_test

// Cross-check property tests for the bit-sliced circuit path: every
// compiled availability circuit must agree with AvailableWord lane for
// lane, and the enumerator's 64-masks-at-once path must produce the same
// transversal counts as the scalar word path.

import (
	"math/rand"
	"testing"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
)

type circuitSystem interface {
	wordSystem
	analysis.CircuitAvailability
}

func circuitSystems(t *testing.T) []circuitSystem {
	t.Helper()
	grown, err := htriang.FromSpec(htriang.Canonical(6).GrowT2())
	if err != nil {
		t.Fatal(err)
	}
	return []circuitSystem{
		hgrid.NewRW(hgrid.Flat(3, 4)),
		hgrid.NewRW(hgrid.Uniform(2, 2, 2)),
		hgrid.NewRW(hgrid.Auto(5, 5)),
		hgrid.NewRW(hgrid.Auto(6, 4)),
		htgrid.Auto(3, 3),
		htgrid.Auto(5, 5),
		htgrid.Auto(6, 4),
		htgrid.NewOriented(hgrid.Auto(4, 4), htgrid.OrientBelowLine),
		htriang.New(5),
		htriang.New(7),
		htriang.New(10),
		grown,
	}
}

// TestCircuitAgreesWithWord evaluates each availability circuit on random
// lane groups and checks all 64 extracted masks against AvailableWord.
func TestCircuitAgreesWithWord(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for _, sys := range circuitSystems(t) {
		circ := sys.AvailabilityCircuit()
		if circ == nil {
			t.Fatalf("%s: no availability circuit", sys.Name())
		}
		n := sys.Universe()
		if circ.Lanes() != n {
			t.Fatalf("%s: circuit has %d lanes, universe is %d", sys.Name(), circ.Lanes(), n)
		}
		lanes := make([]uint64, n)
		scratch := make([]uint64, circ.NumRegs())
		for round := 0; round < 200; round++ {
			for j := range lanes {
				// Mix densities so full lines and covers actually appear.
				switch round % 4 {
				case 0:
					lanes[j] = rng.Uint64()
				case 1:
					lanes[j] = rng.Uint64() | rng.Uint64()
				case 2:
					lanes[j] = rng.Uint64() | rng.Uint64() | rng.Uint64()
				case 3:
					lanes[j] = rng.Uint64() & rng.Uint64()
				}
			}
			got := circ.Eval(lanes, scratch)
			for s := 0; s < 64; s++ {
				var mask uint64
				for j := range lanes {
					mask |= (lanes[j] >> uint(s) & 1) << uint(j)
				}
				want := sys.AvailableWord(mask)
				if (got>>uint(s)&1 == 1) != want {
					t.Fatalf("%s: circuit says %v for mask %#x, AvailableWord says %v",
						sys.Name(), !want, mask, want)
				}
			}
		}
	}
}

// wordOnlyAdapter hides the circuit (and cache-key) interfaces so the
// enumerator falls back to the scalar word path.
type wordOnlyAdapter struct{ s circuitSystem }

func (w wordOnlyAdapter) Universe() int                  { return w.s.Universe() }
func (w wordOnlyAdapter) Available(live bitset.Set) bool { return w.s.Available(live) }
func (w wordOnlyAdapter) AvailableWord(live uint64) bool { return w.s.AvailableWord(live) }

// TestCircuitEnumeratorAgrees compares the lane-evaluated transversal
// counts with the scalar word path on systems small enough to enumerate.
func TestCircuitEnumeratorAgrees(t *testing.T) {
	systems := []circuitSystem{
		hgrid.NewRW(hgrid.Uniform(2, 2, 2)), // n = 16
		htgrid.Auto(4, 4),                   // n = 16
		htriang.New(5),                      // n = 15
		htriang.New(6),                      // n = 21
	}
	for _, sys := range systems {
		fast := analysis.TransversalCounts(sys)
		slow := analysis.TransversalCounts(wordOnlyAdapter{sys})
		for i := range slow {
			if fast[i] != slow[i] {
				t.Fatalf("%s: circuit path a_%d = %d, word path = %d",
					sys.Name(), i, fast[i], slow[i])
			}
		}
	}
}
