package analysis_test

// Cross-check property tests: every construction's AvailableWord must agree
// with Available(bitset.FromWord(...)) bit for bit, and the work-stealing
// enumerator must be invariant in the worker count. These tests live in an
// external test package so they can import the system packages (which
// themselves import analysis for the interface assertions).

import (
	"math/rand"
	"runtime"
	"testing"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/cwlog"
	"hquorum/internal/hgrid"
	"hquorum/internal/hqs"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/kcoterie"
	"hquorum/internal/majority"
	"hquorum/internal/paths"
	"hquorum/internal/ysys"
)

type wordSystem interface {
	analysis.Availability
	analysis.WordAvailability
	Name() string
}

func mustWall(widths []int) *cwlog.System {
	s, err := cwlog.NewWall(widths)
	if err != nil {
		panic(err)
	}
	return s
}

func mustLog(n int) *cwlog.System {
	s, err := cwlog.Log(n)
	if err != nil {
		panic(err)
	}
	return s
}

func mustWeighted(weights []int, threshold int) *majority.System {
	s, err := majority.NewWeighted(weights, threshold)
	if err != nil {
		panic(err)
	}
	return s
}

func mustKMajority(n, k int) *kcoterie.KMajority {
	s, err := kcoterie.NewKMajority(n, k)
	if err != nil {
		panic(err)
	}
	return s
}

// wordSystems returns one instance of every construction implementing the
// word fast path, covering both padded shift-flood layouts and the per-bit
// fallbacks (Y k=9 and Paths ℓ=5 exceed their padded layouts but stay
// within 64 processes).
func wordSystems(t *testing.T) []wordSystem {
	t.Helper()
	grown, err := htriang.FromSpec(htriang.Canonical(6).GrowT2())
	if err != nil {
		t.Fatal(err)
	}
	part, err := kcoterie.NewPartitioned(majority.New(7), ysys.New(4), mustLog(14))
	if err != nil {
		t.Fatal(err)
	}
	return []wordSystem{
		majority.New(21),
		majority.NewTieBreak(28),
		mustWeighted([]int{3, 1, 1, 1, 2, 2, 1, 1, 1, 1}, 8),
		mustKMajority(15, 2),
		part,
		mustLog(14),
		mustLog(29),
		mustWall([]int{2, 1, 3, 4, 2}),
		hqs.Grouped(5, 3),
		hqs.Uniform(3, 3),
		hgrid.NewRW(hgrid.Flat(3, 4)),
		hgrid.NewRW(hgrid.Uniform(2, 2, 2)),
		hgrid.NewRW(hgrid.Auto(5, 5)),
		hgrid.NewRW(hgrid.Auto(6, 4)),
		htgrid.Auto(3, 3),
		htgrid.Auto(5, 5),
		htgrid.Auto(6, 4),
		htgrid.NewOriented(hgrid.Auto(4, 4), htgrid.OrientBelowLine),
		htriang.New(5),
		htriang.New(7),
		htriang.New(10),
		grown,
		ysys.New(5),
		ysys.New(7),
		ysys.New(8), // largest padded Y board
		ysys.New(9), // per-bit fallback
		paths.New(2),
		paths.New(3),
		paths.New(4), // largest padded grid
		paths.New(5), // per-bit fallback (n = 61)
	}
}

// TestAvailableWordAgrees cross-checks the word fast path against the
// bitset predicate on ~10k random masks per configuration, plus the empty
// and full masks.
func TestAvailableWordAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for _, sys := range wordSystems(t) {
		n := sys.Universe()
		if n > 64 {
			t.Fatalf("%s: universe %d exceeds the word contract", sys.Name(), n)
		}
		mask := ^uint64(0)
		if n < 64 {
			mask = uint64(1)<<uint(n) - 1
		}
		check := func(w uint64) {
			t.Helper()
			got := sys.AvailableWord(w)
			want := sys.Available(bitset.FromWord(n, w))
			if got != want {
				t.Fatalf("%s: AvailableWord(%#x) = %v, Available = %v", sys.Name(), w, got, want)
			}
		}
		check(0)
		check(mask)
		for i := 0; i < 10000; i++ {
			// Mix dense and sparse masks: uniform bits alone almost never
			// exercise the boundary between available and not for n ≫ 20.
			w := rng.Uint64() & mask
			switch i % 4 {
			case 1:
				w &= rng.Uint64()
			case 2:
				w |= rng.Uint64() & mask
			case 3:
				w &= rng.Uint64() | rng.Uint64()
			}
			check(w)
		}
	}
}

// TestEnumeratorWorkerInvariance asserts the work-stealing enumerator
// returns identical counts for 1, 3 and GOMAXPROCS workers on systems
// large enough to span multiple work blocks.
func TestEnumeratorWorkerInvariance(t *testing.T) {
	systems := []wordSystem{
		mustLog(18),    // 2¹⁸ subsets: 4 work blocks
		ysys.New(6),    // n = 21: 32 work blocks
		htriang.New(6), // n = 21
	}
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, sys := range systems {
		want := analysis.TransversalCountsParallel(sys, workerCounts[0])
		for _, w := range workerCounts[1:] {
			got := analysis.TransversalCountsParallel(sys, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: workers=%d a_%d = %d, want %d", sys.Name(), w, i, got[i], want[i])
				}
			}
		}
	}
}
