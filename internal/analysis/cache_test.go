package analysis

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// keyedThreshold is a cacheable m-of-n system.
type keyedThreshold struct{ thresholdWord }

func (t keyedThreshold) CacheKey() string { return "test-threshold" }

func TestCachedTransversalCounts(t *testing.T) {
	ResetCache()
	sys := keyedThreshold{thresholdWord{threshold{n: 9, m: 5}}}

	first := CachedTransversalCounts(sys)
	if s := CacheStatsSnapshot(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first call: stats %+v, want 1 miss", s)
	}
	first[0] = 999 // callers own their slice; the cache must not see this

	second := CachedTransversalCounts(sys)
	if s := CacheStatsSnapshot(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("after second call: stats %+v, want 1 miss + 1 hit", s)
	}
	if second[0] == 999 {
		t.Fatal("cache returned the caller-mutated slice")
	}
	want := TransversalCounts(sys)
	for i := range want {
		if second[i] != want[i] {
			t.Fatalf("cached a_%d = %d, want %d", i, second[i], want[i])
		}
	}
}

func TestCachedTransversalCountsUncacheable(t *testing.T) {
	ResetCache()
	sys := thresholdWord{threshold{n: 7, m: 4}} // no CacheKey
	CachedTransversalCounts(sys)
	CachedTransversalCounts(sys)
	if s := CacheStatsSnapshot(); s.Hits != 0 || s.Misses != 0 || s.DiskHits != 0 {
		t.Fatalf("uncacheable system touched the cache: %+v", s)
	}
}

func TestDiskCacheLayer(t *testing.T) {
	dir := t.TempDir()
	SetDiskCacheDir(dir)
	defer SetDiskCacheDir("")
	ResetCache()
	sys := keyedThreshold{thresholdWord{threshold{n: 9, m: 5}}}

	want := CachedTransversalCounts(sys) // miss: enumerates and persists
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("disk layer wrote %d files (%v)", len(files), err)
	}

	ResetCache() // drop the memo layer; the disk entry must survive
	got := CachedTransversalCounts(sys)
	if s := CacheStatsSnapshot(); s.DiskHits != 1 || s.Misses != 0 {
		t.Fatalf("after reload: stats %+v, want 1 disk hit and no enumeration", s)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("disk a_%d = %d, want %d", i, got[i], want[i])
		}
	}

	// A corrupted entry must fall back to enumeration, not a wrong answer.
	if err := os.WriteFile(files[0], []byte(`{"key":"other","counts":[1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	got = CachedTransversalCounts(sys)
	if s := CacheStatsSnapshot(); s.DiskHits != 0 || s.Misses != 1 {
		t.Fatalf("after corruption: stats %+v, want a fresh enumeration", s)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-corruption a_%d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestProgressCallback(t *testing.T) {
	type report struct{ done, total uint64 }
	var reports []report
	SetProgress(func(done, total uint64, _ time.Duration) {
		reports = append(reports, report{done, total})
	})
	defer SetProgress(nil)
	TransversalCounts(thresholdWord{threshold{n: 18, m: 10}}) // 4 blocks
	if len(reports) == 0 {
		t.Fatal("no progress reports delivered")
	}
	last := reports[len(reports)-1]
	if last.done != last.total || last.total != 4 {
		t.Fatalf("final report %+v, want done = total = 4", last)
	}
}
