package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
)

// CacheKeyer is the opt-in contract for the transversal-count memo cache.
// CacheKey must return a string that uniquely determines the availability
// predicate — two systems with equal keys must have identical
// TransversalCounts — or "" when the configuration is not cacheable.
// Structural serializations (shape, dimensions, leaf IDs) satisfy this;
// names alone generally do not.
type CacheKeyer interface {
	CacheKey() string
}

// CacheStats counts memo-cache traffic since the last ResetCache.
type CacheStats struct {
	Hits     uint64 // served from the in-memory map
	DiskHits uint64 // loaded from the on-disk layer
	Misses   uint64 // full enumerations performed
}

var (
	cacheMu       sync.Mutex
	cacheMem      = map[string][]uint64{}
	cacheCounters CacheStats
	cacheDir      string
)

// SetDiskCacheDir installs a directory for the persistent cache layer
// ("" disables, the default). Entries are JSON files named by the SHA-256
// of the cache key, so the exact 2²⁸ sweeps behind the paper tables are
// pay-once across processes.
func SetDiskCacheDir(dir string) {
	cacheMu.Lock()
	cacheDir = dir
	cacheMu.Unlock()
}

// ResetCache clears the in-memory cache and statistics (the disk layer is
// left alone).
func ResetCache() {
	cacheMu.Lock()
	cacheMem = map[string][]uint64{}
	cacheCounters = CacheStats{}
	cacheMu.Unlock()
}

// CacheStatsSnapshot returns the current cache counters.
func CacheStatsSnapshot() CacheStats {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return cacheCounters
}

// CachedTransversalCounts is TransversalCounts behind the process-wide memo
// cache. Systems that do not implement CacheKeyer (or return "") are
// enumerated directly. The returned slice is the caller's to keep.
func CachedTransversalCounts(sys Availability) []uint64 {
	key := ""
	if k, ok := sys.(CacheKeyer); ok {
		key = k.CacheKey()
	}
	if key == "" {
		return TransversalCounts(sys)
	}
	cacheMu.Lock()
	if c, ok := cacheMem[key]; ok {
		cacheCounters.Hits++
		cacheMu.Unlock()
		return append([]uint64(nil), c...)
	}
	dir := cacheDir
	cacheMu.Unlock()
	if dir != "" {
		if c, ok := loadDiskEntry(dir, key, sys.Universe()); ok {
			cacheMu.Lock()
			cacheCounters.DiskHits++
			cacheMem[key] = c
			cacheMu.Unlock()
			return append([]uint64(nil), c...)
		}
	}
	c := TransversalCounts(sys)
	cacheMu.Lock()
	cacheCounters.Misses++
	cacheMem[key] = append([]uint64(nil), c...)
	cacheMu.Unlock()
	if dir != "" {
		storeDiskEntry(dir, key, c)
	}
	return c
}

// diskEntry is the on-disk JSON schema. The full key is stored so a hash
// collision (or a stale file from another repo) loads as a miss instead of
// silently returning the wrong polynomial.
type diskEntry struct {
	Key    string   `json:"key"`
	Counts []uint64 `json:"counts"`
}

func diskPath(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:])[:32]+".json")
}

func loadDiskEntry(dir, key string, n int) ([]uint64, bool) {
	data, err := os.ReadFile(diskPath(dir, key))
	if err != nil {
		return nil, false
	}
	var e diskEntry
	if json.Unmarshal(data, &e) != nil || e.Key != key || len(e.Counts) != n+1 {
		return nil, false
	}
	return e.Counts, true
}

// storeDiskEntry best-effort persists an entry; failures (read-only dir,
// full disk) are ignored — the memo layer still has the counts.
func storeDiskEntry(dir, key string, counts []uint64) {
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Key: key, Counts: counts})
	if err != nil {
		return
	}
	path := diskPath(dir, key)
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	if os.Rename(tmp, path) != nil {
		os.Remove(tmp)
	}
}
