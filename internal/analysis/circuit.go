package analysis

import "math/bits"

// Bit-sliced availability: a Circuit is a flat, hash-consed monotone
// boolean program (AND/OR over input lanes) that evaluates a system's
// availability predicate on 64 live masks at once. Lane j carries bit j
// of 64 independent masks: bit s of lanes[j] is process j's liveness in
// mask s. One Eval call therefore answers 64 availability queries in a
// few dozen word operations — the enumerator feeds it blocks of 64
// consecutive subsets (whose lanes are periodic constants, so no
// transposition is ever needed) and the Monte Carlo sampler feeds it 64
// iid crash patterns (one bernoulliWord per lane).
//
// Only structural predicates compile (trees of AND/OR over cells:
// majority-free hierarchies like h-grid, h-T-grid, h-triang); graph
// connectivity (Y, Paths) does not, and such systems simply don't
// implement CircuitAvailability.

// CircuitAvailability is the optional bit-sliced fast path: the returned
// circuit must satisfy, for every lane assignment,
//
//	bit s of Eval(lanes) == AvailableWord(mask s)
//
// where mask s collects bit s of each lane. A nil circuit means the
// system cannot provide one (e.g. the universe exceeds 64 processes).
type CircuitAvailability interface {
	AvailabilityCircuit() *Circuit
}

// Circuit op codes. Register 0 is constant false, register 1 constant
// true; op k writes register k+2.
const (
	opLane    = iota // load lanes[a]
	opAnd            // regs[a] & regs[b]
	opOr             // regs[a] | regs[b]
	opAllMask        // AND of lanes[j] over set bits j of mask
	opAnyMask        // OR of lanes[j] over set bits j of mask
)

type circOp struct {
	code int32
	a, b Ref
	mask uint64
}

// Circuit is a compiled lane program. Build one with CircuitBuilder.
type Circuit struct {
	n   int // number of input lanes
	ops []circOp
	out Ref
}

// Lanes returns the number of input lanes (the system's universe size).
func (c *Circuit) Lanes() int { return c.n }

// Ops returns the program length (a size/debugging metric).
func (c *Circuit) Ops() int { return len(c.ops) }

// NumRegs returns the scratch length Eval requires.
func (c *Circuit) NumRegs() int { return len(c.ops) + 2 }

// Eval runs the program over the given lanes. scratch must have at least
// NumRegs entries; it is clobbered. Bit s of the result is the predicate
// value on the mask formed by bit s of every lane.
func (c *Circuit) Eval(lanes []uint64, scratch []uint64) uint64 {
	regs := scratch[:c.NumRegs()]
	regs[0] = 0
	regs[1] = ^uint64(0)
	for i := range c.ops {
		op := &c.ops[i]
		var r uint64
		switch op.code {
		case opLane:
			r = lanes[op.a]
		case opAnd:
			r = regs[op.a] & regs[op.b]
		case opOr:
			r = regs[op.a] | regs[op.b]
		case opAllMask:
			r = ^uint64(0)
			for m := op.mask; m != 0; m &= m - 1 {
				r &= lanes[bits.TrailingZeros64(m)]
			}
		case opAnyMask:
			for m := op.mask; m != 0; m &= m - 1 {
				r |= lanes[bits.TrailingZeros64(m)]
			}
		}
		regs[i+2] = r
	}
	return regs[c.out]
}

// Ref names a circuit value: a constant, or the result of an op.
type Ref int32

// False and True are the constant registers of every circuit.
const (
	False Ref = 0
	True  Ref = 1
)

// CircuitBuilder assembles a Circuit. Identical subexpressions are
// hash-consed to a single op, so compilers may freely re-derive shared
// structure (e.g. the per-threshold variants of a line predicate).
type CircuitBuilder struct {
	n    int
	ops  []circOp
	memo map[circOp]Ref
}

// NewCircuitBuilder starts a circuit over n input lanes.
func NewCircuitBuilder(n int) *CircuitBuilder {
	return &CircuitBuilder{n: n, memo: make(map[circOp]Ref)}
}

func (b *CircuitBuilder) emit(op circOp) Ref {
	if r, ok := b.memo[op]; ok {
		return r
	}
	b.ops = append(b.ops, op)
	r := Ref(len(b.ops) + 1) // register index: ops shifted past the constants
	b.memo[op] = r
	return r
}

// Lane returns the value of input lane j (process j's liveness bit).
func (b *CircuitBuilder) Lane(j int) Ref {
	if j < 0 || j >= b.n {
		panic("analysis: circuit lane out of range")
	}
	return b.emit(circOp{code: opLane, a: Ref(j)})
}

// And returns x ∧ y, folding constants and duplicates.
func (b *CircuitBuilder) And(x, y Ref) Ref {
	if x == False || y == False {
		return False
	}
	if x == True {
		return y
	}
	if y == True || x == y {
		return x
	}
	if x > y {
		x, y = y, x
	}
	return b.emit(circOp{code: opAnd, a: x, b: y})
}

// Or returns x ∨ y, folding constants and duplicates.
func (b *CircuitBuilder) Or(x, y Ref) Ref {
	if x == True || y == True {
		return True
	}
	if x == False {
		return y
	}
	if y == False || x == y {
		return x
	}
	if x > y {
		x, y = y, x
	}
	return b.emit(circOp{code: opOr, a: x, b: y})
}

// AllOf returns the conjunction of the lanes named by mask's set bits
// (true for an empty mask): "every one of these processes is live".
func (b *CircuitBuilder) AllOf(mask uint64) Ref {
	switch bits.OnesCount64(mask) {
	case 0:
		return True
	case 1:
		return b.Lane(bits.TrailingZeros64(mask))
	}
	return b.emit(circOp{code: opAllMask, mask: mask})
}

// AnyOf returns the disjunction of the lanes named by mask's set bits
// (false for an empty mask): "some one of these processes is live".
func (b *CircuitBuilder) AnyOf(mask uint64) Ref {
	switch bits.OnesCount64(mask) {
	case 0:
		return False
	case 1:
		return b.Lane(bits.TrailingZeros64(mask))
	}
	return b.emit(circOp{code: opAnyMask, mask: mask})
}

// Build finalizes the circuit with out as its result.
func (b *CircuitBuilder) Build(out Ref) *Circuit {
	ops := make([]circOp, len(b.ops))
	copy(ops, b.ops)
	return &Circuit{n: b.n, ops: ops, out: out}
}

// popCountMask[k] has bit i (0 ≤ i < 64) set iff OnesCount(i) == k: it
// buckets a 64-lane result word by the popcount of the low 6 subset bits
// with seven OnesCount64 calls instead of a 64-iteration loop.
var popCountMask = func() [7]uint64 {
	var m [7]uint64
	for i := 0; i < 64; i++ {
		m[bits.OnesCount64(uint64(i))] |= 1 << uint(i)
	}
	return m
}()

// laneConst[j] (j < 6) is the lane-j word of the 64 consecutive subset
// values base..base+63 (base a multiple of 64): bit i is bit j of i.
var laneConst = func() [6]uint64 {
	var m [6]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 6; j++ {
			if i>>uint(j)&1 == 1 {
				m[j] |= 1 << uint(i)
			}
		}
	}
	return m
}()
