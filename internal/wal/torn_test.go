package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestTornWriteEveryOffset cuts the active segment's final record at
// every byte offset — modeling a write torn mid-record by a crash — and
// asserts recovery stops cleanly at the last fully-valid record: no
// error, no garbage record, and the torn tail physically truncated so
// later appends don't strand bytes behind it.
func TestTornWriteEveryOffset(t *testing.T) {
	base := t.TempDir()
	l, err := Open(base, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	keep := []Record{
		put(0, "first", 1, 3, "value-one"),
		put(0, "second", 2, 3, "value-two"),
	}
	last := put(0, "torn", 3, 3, "value-three")
	for _, r := range append(append([]Record{}, keep...), last) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Abandon()

	seg := filepath.Join(base, "s00", segName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := len(AppendRecord(nil, last))
	intact := len(whole) - lastLen

	for cut := 0; cut < lastLen; cut++ {
		dir := t.TempDir()
		sdir := filepath.Join(dir, "s00")
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			t.Fatal(err)
		}
		torn := whole[:intact+cut]
		if err := os.WriteFile(filepath.Join(sdir, segName(1)), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		lr, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := collect(t, lr)
		if !reflect.DeepEqual(got, keep) {
			t.Fatalf("cut %d: replay = %+v, want the two intact records", cut, got)
		}
		// The torn bytes must be gone from disk: recovery truncates to
		// the last valid record so new appends extend valid history.
		if err := lr.Commit(put(0, "after", 4, 3, "post-crash")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		lr.Abandon()
		lr2, err := Open(dir, Options{Shards: 1})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got2 := collect(t, lr2)
		want2 := append(append([]Record{}, keep...), put(0, "after", 4, 3, "post-crash"))
		if !reflect.DeepEqual(got2, want2) {
			t.Fatalf("cut %d: replay after post-crash append = %+v, want %+v", cut, got2, want2)
		}
		lr2.Abandon()
	}
}
