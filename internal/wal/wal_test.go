package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// put builds a KindPut record for shard s.
func put(s int, key string, counter, writer uint64, val string) Record {
	return Record{Shard: s, Kind: KindPut, Key: key, Counter: counter, Writer: writer, Value: val}
}

// collect replays every record into a slice.
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) { recs = append(recs, r) }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendSyncReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		put(0, "a", 1, 7, "alpha"),
		put(1, "b", 2, 7, "beta"),
		put(3, "c", 3, 8, ""),
		{Shard: 2, Kind: KindClock, Counter: 4096},
		put(0, "a", 5, 7, "alpha2"),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Abandon()

	l2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Abandon()
	got := collect(t, l2)
	// Replay is per-shard in shard order; regroup want the same way.
	var wantByShard []Record
	for s := 0; s < 4; s++ {
		for _, r := range want {
			if r.Shard == s {
				wantByShard = append(wantByShard, r)
			}
		}
	}
	if !reflect.DeepEqual(got, wantByShard) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, wantByShard)
	}
	if st := l2.Stats(); st.Replayed != uint64(len(want)) {
		t.Fatalf("Replayed = %d, want %d", st.Replayed, len(want))
	}
}

// TestGroupCommitOneFsyncPerBatch is the acceptance check for group
// commit: a full batch of 8 records costs exactly one fsync on the
// shard file, not eight.
func TestGroupCommitOneFsyncPerBatch(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Abandon()
	for i := 0; i < 8; i++ {
		if err := l.Append(put(0, "k", uint64(i+1), 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 8 {
		t.Fatalf("Appends = %d, want 8", st.Appends)
	}
	if st.SyncRounds != 1 {
		t.Fatalf("SyncRounds = %d, want 1", st.SyncRounds)
	}
	if st.FileSyncs != 1 {
		t.Fatalf("FileSyncs = %d, want 1 — group commit must fold the batch into one fsync", st.FileSyncs)
	}
	// A Sync with nothing new appended is free: no extra round.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SyncRounds != 1 || st.FileSyncs != 1 {
		t.Fatalf("idle Sync ran a round: %+v", st)
	}
}

// TestConcurrentCommitsCoalesce drives Commit from many goroutines; all
// records must be durable afterwards and rounds must have coalesced (at
// most one round per committer, typically far fewer).
func TestConcurrentCommitsCoalesce(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Commit(put(i%2, "k", uint64(i+1), uint64(i), "v")); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.SyncRounds > n {
		t.Fatalf("SyncRounds = %d > %d commits: no coalescing at all", st.SyncRounds, n)
	}
	l.Abandon()
	l2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Abandon()
	if got := len(collect(t, l2)); got != n {
		t.Fatalf("replayed %d records, want %d", got, n)
	}
}

func TestSnapshotTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Shards: 1, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Commit(put(0, "k", uint64(i+1), 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	due := l.SnapshotDue()
	if len(due) != 1 || due[0] != 0 {
		t.Fatalf("SnapshotDue = %v, want [0]", due)
	}
	// Snapshot with the compacted state: one live entry.
	if err := l.SnapshotShard(0, []Record{put(0, "k", 4, 1, "v")}); err != nil {
		t.Fatal(err)
	}
	if due := l.SnapshotDue(); due != nil {
		t.Fatalf("SnapshotDue after snapshot = %v, want nil", due)
	}
	// Old segments gone: only the fresh active segment plus the snapshot.
	sdir := filepath.Join(dir, "s00")
	ents, err := os.ReadDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("shard dir holds %v, want snapshot + one fresh segment", names)
	}
	// Appends continue in the fresh segment and replay sees snapshot+tail.
	if err := l.Commit(put(0, "k2", 5, 1, "w")); err != nil {
		t.Fatal(err)
	}
	l.Abandon()
	l2, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Abandon()
	got := collect(t, l2)
	want := []Record{put(0, "k", 4, 1, "v"), put(0, "k2", 5, 1, "w")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after snapshot:\n got %+v\nwant %+v", got, want)
	}
	if st := l2.Stats(); st.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2", st.Replayed)
	}
}

func TestCleanShutdownMarker(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	state := map[int][]Record{
		0: {put(0, "a", 3, 1, "x")},
		1: {put(1, "b", 4, 2, "y")},
	}
	for _, recs := range state {
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(func(shard int) []Record { return state[shard] }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "CLEAN")); err != nil {
		t.Fatalf("clean-shutdown marker missing: %v", err)
	}

	l2, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !l2.CleanStart() {
		t.Fatal("CleanStart = false after clean Close")
	}
	got := collect(t, l2)
	want := []Record{state[0][0], state[1][0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after clean shutdown:\n got %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "CLEAN")); !os.IsNotExist(err) {
		t.Fatal("marker not consumed by Open")
	}
	l2.Abandon()

	// Third open, after an unclean stop: full replay path, same state.
	l3, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Abandon()
	if l3.CleanStart() {
		t.Fatal("CleanStart = true without a marker")
	}
	if got := collect(t, l3); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after unclean stop:\n got %+v\nwant %+v", got, want)
	}
}

// TestAbandonLosesOnlyUnsynced: records synced before the crash
// survive; records merely appended do not. This is the simulated-crash
// contract the nemesis harness relies on.
func TestAbandonLosesOnlyUnsynced(t *testing.T) {
	for _, noSync := range []bool{false, true} {
		dir := t.TempDir()
		l, err := Open(dir, Options{Shards: 1, NoSync: noSync})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(put(0, "durable", 1, 1, "yes")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(put(0, "lost", 2, 1, "no")); err != nil {
			t.Fatal(err)
		}
		l.Abandon()
		if err := l.Append(put(0, "dead", 3, 1, "")); err != ErrAbandoned {
			t.Fatalf("Append after Abandon = %v, want ErrAbandoned", err)
		}
		l2, err := Open(dir, Options{Shards: 1, NoSync: noSync})
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, l2)
		want := []Record{put(0, "durable", 1, 1, "yes")}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("noSync=%v: replay after crash:\n got %+v\nwant %+v", noSync, got, want)
		}
		l2.Abandon()
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Shards: 1, SegmentBytes: 64, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Commit(put(0, "key", uint64(i+1), 1, "some-payload-value")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(dir, "s00"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("expected multiple rolled segments, got %d files", len(ents))
	}
	l.Abandon()
	l2, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Abandon()
	got := collect(t, l2)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	if got[n-1].Counter != n {
		t.Fatalf("last record counter = %d, want %d", got[n-1].Counter, n)
	}
}

func TestDecodeRecordRejectsCorruption(t *testing.T) {
	valid := AppendRecord(nil, put(0, "key", 9, 2, "value"))
	if rec, n, err := DecodeRecord(valid); err != nil || n != len(valid) || rec.Key != "key" {
		t.Fatalf("valid record: rec=%+v n=%d err=%v", rec, n, err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"half prefix":    {0xff},
		"huge length":    append(bytes.Repeat([]byte{0xff}, 9), 0x01),
		"crc flipped":    flipByte(valid, 2),
		"body flipped":   flipByte(valid, len(valid)-1),
		"unknown kind":   AppendRecord(nil, Record{Kind: 99, Counter: 1}),
		"trailing junk":  appendFrame(nil, append(appendBody(nil, put(0, "k", 1, 1, "v")), 0xAA)),
		"short frame":    {0x04, 0, 0, 0, 0}, // length below the 5-byte floor
		"length overrun": valid[:len(valid)-2],
	}
	for name, data := range cases {
		if _, _, err := DecodeRecord(data); err != ErrCorrupt {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}
