package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hquorum/internal/optrace"
)

// markerName is the clean-shutdown marker. Close writes it after
// snapshotting every shard and truncating their segments; Open consumes
// it and lets Replay skip the segment scan, trusting the snapshots to
// hold the complete state. A crash (no marker) always takes the full
// snapshot-plus-segments replay path.
const markerName = "CLEAN"

// ErrAbandoned reports an operation on a log whose files were dropped
// by Abandon — the simulated-crash state.
var ErrAbandoned = errors.New("wal: log abandoned")

// Options configures a Log.
type Options struct {
	// Shards is the number of shard logs; it must match the replica
	// store's shard count so Record.Shard routes consistently across
	// restarts. Minimum 1.
	Shards int
	// SegmentBytes seals the active segment once it reaches this size
	// (default 4 MiB).
	SegmentBytes int64
	// SnapshotEvery marks a shard snapshot-due after this many appended
	// records (default 4096; negative disables the signal). The log
	// only raises the flag — the owner of the state dumps the shard and
	// calls SnapshotShard, because only it can read the map and the log
	// under one lock.
	SnapshotEvery int
	// NoSync skips fsync on flush: records are written to the file but
	// not forced to disk. The deterministic simulation runs NoSync —
	// its crash model kills a process, not the machine, so what write()
	// made visible is exactly what survives — while real deployments
	// keep fsync on.
	NoSync bool
}

// counters are the Log's internal atomics; Stats() snapshots them.
type counters struct {
	appends    atomic.Uint64
	syncRounds atomic.Uint64
	fileSyncs  atomic.Uint64
	snapshots  atomic.Uint64
	bytes      atomic.Uint64
	replayed   atomic.Uint64
}

// Stats is a point-in-time snapshot of a Log's operation counters.
type Stats struct {
	Appends    uint64 // records appended
	SyncRounds uint64 // group-commit flush rounds executed
	FileSyncs  uint64 // fsync calls on segment and snapshot files
	Snapshots  uint64 // shard snapshots written
	Bytes      uint64 // record bytes written to segments
	Replayed   uint64 // records emitted by Replay
}

// Log is a durable per-shard write-ahead log with group commit.
//
// Concurrency contract: Append may be called from many goroutines (the
// transport's fast-path delivery); Sync is the group-commit barrier —
// when it returns nil, every record appended before the call is
// durable. Concurrent Sync callers coalesce: one becomes the leader and
// flushes every shard's buffer with a single write+fsync per dirty
// shard file, the rest wait for the round that covers them. That is how
// an eight-op quorum batch costs one fsync, not eight.
type Log struct {
	dir    string
	opts   Options
	shards []*shardLog
	locks  []sync.Mutex // one per shard, guarding the shardLog
	due    atomic.Int64 // number of shards with snapDue set
	clean  bool         // clean-shutdown marker was present at Open

	mu        sync.Mutex // group-committer state
	cond      *sync.Cond
	appendSeq uint64 // records appended (assigned under mu)
	syncedSeq uint64 // records covered by a completed flush round
	syncing   bool   // a leader is mid-round

	abandoned atomic.Bool
	stats     counters
}

// Open opens (or initializes) a log rooted at dir, recovering each
// shard: torn tails are truncated to the last valid record and the
// active segments positioned for appends. Call Replay before the first
// Append to rebuild state.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 4096
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	marker := filepath.Join(dir, markerName)
	if _, err := os.Stat(marker); err == nil {
		l.clean = true
	}
	l.shards = make([]*shardLog, opts.Shards)
	l.locks = make([]sync.Mutex, opts.Shards)
	for i := range l.shards {
		sl, err := openShard(dir, i, &l.opts)
		if err != nil {
			l.closeFiles()
			return nil, fmt.Errorf("wal: open shard %d: %w", i, err)
		}
		l.shards[i] = sl
	}
	// Consume the marker only once every shard opened: a crash between
	// here and the caller's Replay re-runs full recovery, which is
	// idempotent.
	if l.clean {
		if err := os.Remove(marker); err != nil {
			l.closeFiles()
			return nil, err
		}
	}
	return l, nil
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// CleanStart reports whether the clean-shutdown marker was present at
// Open — i.e. Replay can trust snapshots alone.
func (l *Log) CleanStart() bool { return l.clean }

// Replay streams every recovered record to fn, shard by shard: the
// shard's snapshot first, then its segments in order (skipped entirely
// after a clean shutdown). Replay before appending; records carry their
// shard index.
func (l *Log) Replay(fn func(Record)) error {
	for i, sl := range l.shards {
		l.locks[i].Lock()
		err := sl.replay(!l.clean, fn, &l.stats)
		l.locks[i].Unlock()
		if err != nil {
			return fmt.Errorf("wal: replay shard %d: %w", i, err)
		}
	}
	return nil
}

// Append stages one record for the next commit round. It is durable
// only after a Sync that started at or after this call returns nil.
func (l *Log) Append(rec Record) error {
	if l.abandoned.Load() {
		return ErrAbandoned
	}
	if rec.Shard < 0 || rec.Shard >= len(l.shards) {
		return fmt.Errorf("wal: shard %d out of range [0,%d)", rec.Shard, len(l.shards))
	}
	l.locks[rec.Shard].Lock()
	err := l.shards[rec.Shard].append(rec)
	if err == nil && l.shards[rec.Shard].snapDue {
		// Transition accounting for the SnapshotDue fast path; the
		// flag itself stays set until SnapshotShard clears it.
		if !l.shards[rec.Shard].snapDueCounted {
			l.shards[rec.Shard].snapDueCounted = true
			l.due.Add(1)
		}
	}
	l.locks[rec.Shard].Unlock()
	if err != nil {
		return err
	}
	l.stats.appends.Add(1)
	l.mu.Lock()
	l.appendSeq++
	l.mu.Unlock()
	return nil
}

// Sync is the group-commit barrier: it returns nil once every record
// appended before the call is flushed and (unless NoSync) fsynced.
// Concurrent callers coalesce into rounds — one leader flushes all
// dirty shards, followers wait for the covering round.
func (l *Log) Sync() error {
	return l.SyncTraced(nil)
}

// SyncTraced is Sync with an optional trace record: the time spent
// waiting for a covering group-commit round (or electing this caller
// leader) lands in wal_wait, and the leader's own flush+fsync pass in
// fsync. Followers record zero fsync time — they only waited — so the
// two stages together separate "the disk was busy" from "the disk was
// slow".
func (l *Log) SyncTraced(rec *optrace.Rec) error {
	rec.Begin(optrace.StageWALWait)
	l.mu.Lock()
	target := l.appendSeq
	for l.syncedSeq < target && l.syncing {
		l.cond.Wait()
	}
	if l.syncedSeq >= target {
		l.mu.Unlock()
		rec.End(optrace.StageWALWait)
		return nil
	}
	l.syncing = true
	target = l.appendSeq // absorb records appended while waiting
	l.mu.Unlock()
	rec.End(optrace.StageWALWait)

	rec.Begin(optrace.StageFsync)
	err := l.flushAll()
	rec.End(optrace.StageFsync)

	l.mu.Lock()
	l.syncing = false
	if err == nil && target > l.syncedSeq {
		l.syncedSeq = target
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// Commit appends recs and blocks until they are durable — the
// convenience form protocol code uses per quorum round.
func (l *Log) Commit(recs ...Record) error {
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			return err
		}
	}
	return l.Sync()
}

// flushAll writes and fsyncs every shard's buffered records.
func (l *Log) flushAll() error {
	if l.abandoned.Load() {
		return ErrAbandoned
	}
	l.stats.syncRounds.Add(1)
	var firstErr error
	for i, sl := range l.shards {
		l.locks[i].Lock()
		err := sl.flush(&l.stats)
		l.locks[i].Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SnapshotDue returns the shards whose record count since their last
// snapshot crossed Options.SnapshotEvery. The flag stays up until
// SnapshotShard runs, so callers may coalesce checks; the common case
// (nothing due) is one atomic load.
func (l *Log) SnapshotDue() []int {
	if l.due.Load() == 0 {
		return nil
	}
	var due []int
	for i := range l.shards {
		l.locks[i].Lock()
		if l.shards[i].snapDue {
			due = append(due, i)
		}
		l.locks[i].Unlock()
	}
	return due
}

// SnapshotShard atomically replaces one shard's on-disk history with
// recs, its full current state, then truncates the shard's segments.
// The caller must guarantee recs covers every record it has appended
// for the shard — rkv does so by dumping the shard map under the same
// lock its appends take, so map contents are always a superset of the
// log.
func (l *Log) SnapshotShard(shard int, recs []Record) error {
	if l.abandoned.Load() {
		return ErrAbandoned
	}
	if shard < 0 || shard >= len(l.shards) {
		return fmt.Errorf("wal: shard %d out of range [0,%d)", shard, len(l.shards))
	}
	l.locks[shard].Lock()
	sl := l.shards[shard]
	wasDue := sl.snapDueCounted
	err := sl.snapshot(recs, &l.stats)
	if err == nil && wasDue {
		sl.snapDueCounted = false
		l.due.Add(-1)
	}
	l.locks[shard].Unlock()
	return err
}

// Close performs a clean shutdown: flush and fsync everything, then, if
// dump is non-nil, snapshot each shard from dump's state, truncate all
// segments and write the clean-shutdown marker so the next Open can
// skip segment replay. Close with a nil dump just flushes and releases
// files (no marker — next start replays normally).
func (l *Log) Close(dump func(shard int) []Record) error {
	if l.abandoned.Load() {
		return ErrAbandoned
	}
	firstErr := l.Sync()
	if dump != nil {
		for i := range l.shards {
			recs := dump(i)
			l.locks[i].Lock()
			err := l.shards[i].snapshot(recs, &l.stats)
			l.locks[i].Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr == nil {
			firstErr = l.writeMarker()
		}
	}
	l.closeFiles()
	return firstErr
}

// writeMarker durably records a clean shutdown.
func (l *Log) writeMarker() error {
	path := filepath.Join(l.dir, markerName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("clean\n")); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if l.opts.NoSync {
		return nil
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// Abandon drops the log without flushing: buffered records are lost,
// files are closed as-is, and every subsequent operation fails with
// ErrAbandoned. It is the simulated-crash path — what a SIGKILL does to
// user-space buffers — and the harness reopens the directory with Open
// to model the restart.
func (l *Log) Abandon() {
	l.abandoned.Store(true)
	l.closeFiles()
	// Wake any Sync followers parked on the condition; their leader's
	// flush will fail with ErrAbandoned and re-check terminates.
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}

func (l *Log) closeFiles() {
	for i, sl := range l.shards {
		if sl == nil {
			continue
		}
		l.locks[i].Lock()
		sl.close()
		l.locks[i].Unlock()
	}
}

// Stats snapshots the log's operation counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:    l.stats.appends.Load(),
		SyncRounds: l.stats.syncRounds.Load(),
		FileSyncs:  l.stats.fileSyncs.Load(),
		Snapshots:  l.stats.snapshots.Load(),
		Bytes:      l.stats.bytes.Load(),
		Replayed:   l.stats.replayed.Load(),
	}
}
