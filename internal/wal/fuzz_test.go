package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord: log files read back at recovery are hostile input —
// a torn write, a bit flip at rest, or a truncated copy. Decoding
// arbitrary bytes must return ErrCorrupt or a record, never panic or
// over-read, and a successful decode must be canonical: re-encoding the
// record reproduces exactly the bytes consumed. The committed corpus
// under testdata/fuzz seeds real record shapes; `go test` replays it
// even without -fuzz.
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range recordSamples() {
		f.Add(AppendRecord(nil, rec))
	}
	// Malformed shapes: empty, torn prefix, huge length, bad CRC.
	f.Add([]byte{})
	f.Add([]byte{0x80})
	f.Add(bytes.Repeat([]byte{0xff}, 10))
	f.Add(flipByte(AppendRecord(nil, Record{Kind: KindClock, Counter: 7}), 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		again := AppendRecord(nil, rec)
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("decode not canonical:\n in  %x\n out %x", data[:n], again)
		}
		// A stream of records scans without panicking too.
		scanBuf(data, 0, func(Record) {})
	})
}

// recordSamples is the canonical set of record shapes: one per kind
// plus edge values (empty key/value, max counters). The corpus test
// commits their encodings as seed files.
func recordSamples() []Record {
	return []Record{
		{Kind: KindPut, Key: "k", Counter: 1, Writer: 0, Value: "v"},
		{Kind: KindPut, Key: "", Counter: 0, Writer: 0, Value: ""},
		{Kind: KindPut, Key: "key-00042", Counter: 1<<64 - 1, Writer: 12, Value: "payload-bytes"},
		{Kind: KindClock, Counter: 4096},
		{Kind: KindClock, Counter: 1<<64 - 1},
	}
}
