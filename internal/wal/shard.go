package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
	snapName  = "snap.wal"
	snapTmp   = "snap.tmp"
)

// shardLog is one shard's on-disk history: an optional snapshot file
// (the compacted state as of some point) plus numbered segment files of
// records appended since. Appends encode into an in-memory buffer;
// flush (driven by the Log's group committer) writes and fsyncs the
// buffer in one call, so durability cost is paid per commit round, not
// per record.
type shardLog struct {
	// The shard's mutex nests inside the rkv store's map-shard lock
	// (appends and snapshots are both issued under it) and inside the
	// Log's committer mutex ordering; it never calls back out.
	id   int
	dir  string
	opts *Options

	seg       *os.File // active segment
	segs      []uint64 // segment numbers present on disk, ascending
	segSize   int64    // bytes written to the active segment
	buf       []byte   // encoded records awaiting flush
	scratch   []byte   // body-encoding scratch
	sinceSnap int      // records appended since the last snapshot
	snapDue   bool
	// snapDueCounted mirrors snapDue into the Log's atomic due count
	// exactly once per false→true transition.
	snapDueCounted bool
	err            error // sticky: first I/O failure poisons the shard
}

func segName(n uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// segNumber parses a segment file name; ok is false for anything else.
func segNumber(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// openShard opens (or creates) one shard directory, scans the newest
// segment for a torn tail, truncates it to the last valid record, and
// positions the active segment for appends.
func openShard(dir string, id int, opts *Options) (*shardLog, error) {
	sdir := filepath.Join(dir, fmt.Sprintf("s%02d", id))
	if err := os.MkdirAll(sdir, 0o755); err != nil {
		return nil, err
	}
	sl := &shardLog{id: id, dir: sdir, opts: opts}
	ents, err := os.ReadDir(sdir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if n, ok := segNumber(e.Name()); ok {
			sl.segs = append(sl.segs, n)
		}
	}
	sort.Slice(sl.segs, func(a, b int) bool { return sl.segs[a] < sl.segs[b] })
	if len(sl.segs) == 0 {
		return sl, sl.newSegment(1)
	}
	last := sl.segs[len(sl.segs)-1]
	path := filepath.Join(sdir, segName(last))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	valid := scanBuf(data, id, nil)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	sl.seg = f
	sl.segSize = int64(valid)
	return sl, nil
}

// newSegment creates and activates segment n.
func (sl *shardLog) newSegment(n uint64) error {
	f, err := os.OpenFile(filepath.Join(sl.dir, segName(n)), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		sl.err = err
		return err
	}
	sl.seg = f
	sl.segs = append(sl.segs, n)
	sl.segSize = 0
	return sl.syncDir()
}

// append encodes rec into the flush buffer. Caller holds the Log's
// per-shard lock for this shard.
func (sl *shardLog) append(rec Record) error {
	if sl.err != nil {
		return sl.err
	}
	sl.scratch = appendBody(sl.scratch[:0], rec)
	sl.buf = appendFrame(sl.buf, sl.scratch)
	sl.sinceSnap++
	if sl.opts.SnapshotEvery > 0 && sl.sinceSnap >= sl.opts.SnapshotEvery {
		sl.snapDue = true
	}
	return nil
}

// flush writes the buffered records to the active segment and, unless
// the log runs NoSync, fsyncs it — one write and one sync per commit
// round regardless of how many records the round batched. A full
// segment is sealed and a fresh one opened after the flush.
func (sl *shardLog) flush(st *counters) error {
	if sl.err != nil {
		return sl.err
	}
	if len(sl.buf) == 0 {
		return nil
	}
	if _, err := sl.seg.Write(sl.buf); err != nil {
		sl.err = err
		return err
	}
	st.bytes.Add(uint64(len(sl.buf)))
	sl.segSize += int64(len(sl.buf))
	sl.buf = sl.buf[:0]
	if !sl.opts.NoSync {
		if err := sl.seg.Sync(); err != nil {
			sl.err = err
			return err
		}
		st.fileSyncs.Add(1)
	}
	if sl.segSize >= sl.opts.SegmentBytes {
		if err := sl.seg.Close(); err != nil {
			sl.err = err
			return err
		}
		if err := sl.newSegment(sl.segs[len(sl.segs)-1] + 1); err != nil {
			return err
		}
	}
	return nil
}

// snapshot replaces the shard's entire on-disk history with recs, the
// shard's full current state. The caller guarantees recs is a superset
// of every record appended so far (rkv dumps the shard map under the
// same lock that ordered the appends), so buffered-but-unflushed
// records are covered by the snapshot and dropped, and all segments are
// deleted. The snapshot file is written to a temp name, fsynced, then
// renamed — a crash mid-snapshot leaves the previous snapshot plus
// segments intact.
func (sl *shardLog) snapshot(recs []Record, st *counters) error {
	if sl.err != nil {
		return sl.err
	}
	var buf []byte
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	tmp := filepath.Join(sl.dir, snapTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		sl.err = err
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		sl.err = err
		return err
	}
	if !sl.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			sl.err = err
			return err
		}
		st.fileSyncs.Add(1)
	}
	if err := f.Close(); err != nil {
		sl.err = err
		return err
	}
	if err := os.Rename(tmp, filepath.Join(sl.dir, snapName)); err != nil {
		sl.err = err
		return err
	}
	// The snapshot now covers everything: drop buffered records and
	// delete every segment, then start a fresh one.
	sl.buf = sl.buf[:0]
	if sl.seg != nil {
		if err := sl.seg.Close(); err != nil {
			sl.err = err
			return err
		}
		sl.seg = nil
	}
	next := uint64(1)
	if len(sl.segs) > 0 {
		next = sl.segs[len(sl.segs)-1] + 1
	}
	for _, n := range sl.segs {
		if err := os.Remove(filepath.Join(sl.dir, segName(n))); err != nil {
			sl.err = err
			return err
		}
	}
	sl.segs = sl.segs[:0]
	sl.sinceSnap = 0
	sl.snapDue = false
	st.snapshots.Add(1)
	if err := sl.newSegment(next); err != nil {
		return err
	}
	return sl.syncDir()
}

// replay reads the snapshot (if any) then every segment in order,
// invoking fn for each valid record. Each file's scan stops at the
// first torn or corrupt record; for sealed segments that also guards
// against a middle segment damaged at rest. When segments is false only
// the snapshot is read — the clean-shutdown fast path.
func (sl *shardLog) replay(segments bool, fn func(Record), st *counters) error {
	count := func(rec Record) {
		st.replayed.Add(1)
		fn(rec)
	}
	if data, err := os.ReadFile(filepath.Join(sl.dir, snapName)); err == nil {
		scanBuf(data, sl.id, count)
	} else if !os.IsNotExist(err) {
		return err
	}
	if !segments {
		return nil
	}
	for _, n := range sl.segs {
		data, err := os.ReadFile(filepath.Join(sl.dir, segName(n)))
		if err != nil {
			return err
		}
		scanBuf(data, sl.id, count)
	}
	return nil
}

// syncDir fsyncs the shard directory so file creates, deletes and the
// snapshot rename are themselves durable.
func (sl *shardLog) syncDir() error {
	if sl.opts.NoSync {
		return nil
	}
	d, err := os.Open(sl.dir)
	if err != nil {
		sl.err = err
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		sl.err = err
		return err
	}
	return nil
}

// close flushes nothing: the Log drives flushes; close just releases
// the file handle.
func (sl *shardLog) close() {
	if sl.seg != nil {
		sl.seg.Close()
		sl.seg = nil
	}
}
