// Seed fuzz corpus maintenance for FuzzDecodeRecord, following the
// codec package's self-verifying pattern: the corpus under
// testdata/fuzz/FuzzDecodeRecord is committed so `go test -fuzz` starts
// from real record encodings of every kind instead of rediscovering the
// format, and plain `go test` replays it so a decoder regression on any
// historical record shape fails CI immediately.
//
// Regenerate after changing the record format:
//
//	go test ./internal/wal -run TestSeedCorpus -update-corpus
package wal

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the committed seed fuzz corpus")

const corpusDir = "testdata/fuzz/FuzzDecodeRecord"

// seedRecords returns the corpus entries: file name -> encoded record.
func seedRecords() map[string][]byte {
	frames := make(map[string][]byte)
	for i, rec := range recordSamples() {
		frames[fmt.Sprintf("seed-kind-%d-%d", rec.Kind, i)] = AppendRecord(nil, rec)
	}
	return frames
}

// TestSeedCorpusCoversAllKinds verifies the committed corpus: every
// file parses, every well-formed seed decodes cleanly and
// canonically, and together the seeds cover every record kind. With
// -update-corpus it (re)writes the seed files first.
func TestSeedCorpusCoversAllKinds(t *testing.T) {
	frames := seedRecords()
	if *updateCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, body := range frames {
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
			if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d seed records to %s", len(frames), corpusDir)
	}

	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus missing (run with -update-corpus to generate): %v", err)
	}
	covered := make(map[Kind]bool)
	seeds := 0
	for _, e := range entries {
		data := readCorpusFile(t, filepath.Join(corpusDir, e.Name()))
		if rec, _, err := DecodeRecord(data); err == nil {
			covered[rec.Kind] = true
		}
		if !strings.HasPrefix(e.Name(), "seed-") {
			continue // fuzz-discovered additions need not decode cleanly
		}
		seeds++
		rec, n, err := DecodeRecord(data)
		if err != nil {
			t.Errorf("%s: well-formed seed no longer decodes: %v", e.Name(), err)
			continue
		}
		if n != len(data) {
			t.Errorf("%s: seed decodes %d of %d bytes", e.Name(), n, len(data))
		}
		if got := AppendRecord(nil, rec); string(got) != string(data) {
			t.Errorf("%s: re-encoding differs from seed", e.Name())
		}
	}
	if seeds < len(frames) {
		t.Errorf("corpus holds %d seed files, want %d (run with -update-corpus)", seeds, len(frames))
	}
	for _, kind := range []Kind{KindPut, KindClock} {
		if !covered[kind] {
			t.Errorf("corpus covers no record of kind %d", kind)
		}
	}
}

// readCorpusFile parses Go's fuzz corpus format: a version line followed
// by one []byte("...") literal.
func readCorpusFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 3)
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		t.Fatalf("%s: not a fuzz corpus file", path)
	}
	lit := strings.TrimSpace(lines[1])
	if !strings.HasPrefix(lit, "[]byte(") || !strings.HasSuffix(lit, ")") {
		t.Fatalf("%s: unexpected corpus entry %q", path, lit)
	}
	s, err := strconv.Unquote(lit[len("[]byte(") : len(lit)-1])
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return []byte(s)
}
