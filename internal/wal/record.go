// Package wal implements the durable storage backend behind the rkv
// replica store: per-shard segmented append-only logs with group
// commit, periodic snapshots with segment truncation, and
// replay-on-restart.
//
// Every logged event is one self-delimiting record:
//
//	record := uvarint(len(crc+body)) crc32c(body) body
//	body   := uvarint(kind) fields...
//
// The framing reuses the codec package's idiom — uvarint length prefix,
// varint/length-prefixed-string fields, a hard size bound so a corrupt
// length cannot force a giant allocation — plus a CRC32-C over the body
// so a torn or bit-rotted tail is detected, not loaded. Decoders treat
// any malformed record as the end of valid history: replay stops at the
// last record that checks out, which is exactly the crash-recovery
// contract (an interrupted append may leave a partial record; nothing
// after it was acknowledged).
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"hquorum/internal/codec"
)

// Kind discriminates record types within a shard log.
type Kind uint8

const (
	// KindPut is a versioned key write — the replica store's monotonic
	// merge unit. Replaying a put is idempotent: higher version wins,
	// so overlapping snapshot and segment history converges.
	KindPut Kind = 1
	// KindClock is a clock lease: the node promises never to stamp a
	// version counter above Counter without first logging a higher
	// lease. Replay raises the node's clock to the lease so a restarted
	// node cannot reuse a pre-crash (counter, writer) stamp — which may
	// survive on remote replicas — for a different value.
	KindClock Kind = 2
)

// MaxRecord bounds one record frame (crc + body). It mirrors
// codec.MaxFrame: no wire message can carry a value bigger than a
// frame, so no legitimate record can exceed it either — anything larger
// in a length prefix is corruption.
const MaxRecord = codec.MaxFrame

// ErrCorrupt reports a record that is structurally invalid: a torn
// length prefix, a length beyond MaxRecord or the available bytes, a
// CRC mismatch, an unknown kind, or trailing junk inside the body.
// Replay treats it as the torn tail of a crashed write and stops.
var ErrCorrupt = errors.New("wal: corrupt record")

// Record is one logged event. Shard routes the record to a shard log
// and is not encoded — placement is implied by the file it lives in.
type Record struct {
	Shard   int
	Kind    Kind
	Key     string // KindPut only
	Counter uint64 // put: version counter; clock: leased-to bound
	Writer  uint64 // KindPut only: the stamping node's ID
	Value   string // KindPut only
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendBody appends rec's body (kind + fields, no framing) to dst.
func appendBody(dst []byte, rec Record) []byte {
	dst = codec.AppendUvarint(dst, uint64(rec.Kind))
	switch rec.Kind {
	case KindPut:
		dst = codec.AppendString(dst, rec.Key)
		dst = codec.AppendUvarint(dst, rec.Counter)
		dst = codec.AppendUvarint(dst, rec.Writer)
		dst = codec.AppendString(dst, rec.Value)
	case KindClock:
		dst = codec.AppendUvarint(dst, rec.Counter)
	}
	return dst
}

// appendFrame appends the framed form of an encoded body to dst.
func appendFrame(dst []byte, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(4+len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	return append(dst, body...)
}

// AppendRecord appends rec as one framed, CRC-guarded record and
// returns the extended slice. The hot path inside the log reuses a
// per-shard scratch buffer instead; this form is for tests and tools.
func AppendRecord(buf []byte, rec Record) []byte {
	return appendFrame(buf, appendBody(nil, rec))
}

// DecodeRecord parses one framed record from the front of data and
// returns it with the number of bytes consumed. Any malformed input
// returns ErrCorrupt — decoding arbitrary bytes must never panic,
// over-read, or allocate beyond MaxRecord.
func DecodeRecord(data []byte) (Record, int, error) {
	size, n := binary.Uvarint(data)
	if n <= 0 {
		return Record{}, 0, ErrCorrupt
	}
	// Length guard: at least the CRC plus a one-byte body, at most
	// MaxRecord, and never past the bytes actually present.
	if size < 5 || size > MaxRecord || size > uint64(len(data)-n) {
		return Record{}, 0, ErrCorrupt
	}
	frame := data[n : n+int(size)]
	body := frame[4:]
	if binary.LittleEndian.Uint32(frame) != crc32.Checksum(body, crcTable) {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, n + int(size), nil
}

// decodeBody parses a record body through the codec Reader's sticky
// error, rejecting unknown kinds and trailing bytes.
func decodeBody(body []byte) (Record, error) {
	rd := codec.NewReader(body)
	rec := Record{Kind: Kind(rd.Uvarint())}
	switch rec.Kind {
	case KindPut:
		rec.Key = rd.String()
		rec.Counter = rd.Uvarint()
		rec.Writer = rd.Uvarint()
		rec.Value = rd.String()
	case KindClock:
		rec.Counter = rd.Uvarint()
	default:
		rd.Fail()
	}
	if rd.Err() != nil || rd.Len() != 0 {
		return Record{}, ErrCorrupt
	}
	return rec, nil
}

// scanBuf walks the framed records at the front of data, invoking fn
// (if non-nil) for each valid one, and returns the byte offset just
// past the last valid record — the length a recovering log truncates
// its active segment to.
func scanBuf(data []byte, shard int, fn func(Record)) int {
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			break
		}
		if fn != nil {
			rec.Shard = shard
			fn(rec)
		}
		off += n
	}
	return off
}
