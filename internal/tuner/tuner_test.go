package tuner

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"hquorum/internal/bitset"
	"hquorum/internal/cwlog"
	"hquorum/internal/epoch"
	"hquorum/internal/hgrid"
	"hquorum/internal/hqs"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/majority"
	"hquorum/internal/paths"
	"hquorum/internal/quorum"
	"hquorum/internal/ysys"
)

// TestCandidatesIntersect is the asymmetry safety property: every (read,
// write) quorum pair a tuner-search candidate can produce intersects, for
// every member count the search supports a distinct family on. It also
// pins that every emitted candidate validates.
func TestCandidatesIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 8, 9, 12, 15, 16} {
		members := epoch.MemberRange(0, n)
		cands := Candidates(members)
		if len(cands) < 2 {
			t.Fatalf("n=%d: only %d candidates", n, len(cands))
		}
		for _, p := range cands {
			if err := p.Validate(n); err != nil {
				t.Fatalf("n=%d: candidate %v invalid: %v", n, p, err)
			}
			pk, err := epoch.NewPickers(n, p)
			if err != nil {
				t.Fatalf("n=%d: %v: %v", n, p, err)
			}
			for trial := 0; trial < 60; trial++ {
				live := bitset.New(n)
				for i := 0; i < n; i++ {
					if rng.Intn(5) != 0 { // 80% alive
						live.Add(i)
					}
				}
				rq, rerr := pk.Read(rng, live)
				wq, werr := pk.Write(rng, live)
				if rerr == nil && werr == nil && !rq.Intersects(wq) {
					t.Fatalf("n=%d %v: read %v misses write %v (live %v)", n, p, rq, wq, live)
				}
				// The mutex picker is a separate symmetric coterie and must
				// pairwise intersect with itself.
				m1, e1 := pk.Mutex(rng, live)
				m2, e2 := pk.Mutex(rng, live)
				if e1 == nil && e2 == nil && !m1.Intersects(m2) {
					t.Fatalf("n=%d %v: mutex quorums %v and %v don't intersect", n, p, m1, m2)
				}
			}
		}
	}
}

// TestNineSystemsIntersect extends the property to all nine analysis-side
// constructions (symmetric coteries, so read and write draws come from
// the same picker and must pairwise intersect).
func TestNineSystemsIntersect(t *testing.T) {
	log16, err := cwlog.Log(16)
	if err != nil {
		t.Fatal(err)
	}
	systems := []quorum.System{
		majority.New(9),
		hqs.Uniform(2, 3),
		hqs.Grouped(3, 5),
		log16,
		hgrid.NewRW(hgrid.Auto(4, 4)),
		hgrid.NewRW(hgrid.Flat(3, 5)),
		htgrid.Auto(4, 4),
		htriang.New(5),
		paths.New(3),
		ysys.New(3),
	}
	rng := rand.New(rand.NewSource(99))
	for _, sys := range systems {
		n := sys.Universe()
		for trial := 0; trial < 80; trial++ {
			live := bitset.New(n)
			for i := 0; i < n; i++ {
				if rng.Intn(6) != 0 {
					live.Add(i)
				}
			}
			q1, e1 := sys.Pick(rng, live)
			q2, e2 := sys.Pick(rng, live)
			if e1 != nil || e2 != nil {
				continue
			}
			if !q1.Intersects(q2) {
				t.Fatalf("%T: quorums %v and %v don't intersect (live %v)", sys, q1, q2, live)
			}
		}
	}
}

// TestOptimizerMixSensitivity pins the PR's demo behavior on 16 members:
// under a balanced mix no candidate clears both the availability floor
// and the swap gain, so the driver stays on majority; under a 95%-read
// mix a structurally asymmetric flavor becomes feasible and wins by well
// over the default MinGain.
func TestOptimizerMixSensitivity(t *testing.T) {
	cur := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 16)}

	d := NewDriver(Policy{HoldFor: 2, MinOps: 10})
	for i := 0; i < 5; i++ {
		dec, err := d.Evaluate(cur, Mix(0.5, 0, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Swap {
			t.Fatalf("eval %d: balanced mix must not trigger a swap (best %v gain %.2f)", i, dec.Best.Params, dec.Gain)
		}
	}

	var dec Decision
	var err error
	for i := 0; i < 2; i++ {
		dec, err = d.Evaluate(cur, Mix(0.95, 0, 1000))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Swap {
		t.Fatalf("read-heavy mix should swap after HoldFor evals (best %v gain %.2f hold %d)", dec.Best.Params, dec.Gain, dec.Hold)
	}
	switch dec.Best.Params.Flavor {
	case epoch.FlavorHGrid, epoch.FlavorHTGrid, epoch.FlavorHMaj:
	default:
		t.Fatalf("read-heavy winner should be a structurally asymmetric flavor, got %v", dec.Best.Params)
	}
	if dec.Gain < 1.5 {
		t.Fatalf("read-heavy gain %.2f, want >= 1.5", dec.Gain)
	}
	if !dec.Best.Score.Feasible {
		t.Fatal("winner must be feasible")
	}
}

// TestDriverHysteresis checks MinOps gating, the HoldFor streak, and the
// reset after a swap decision.
func TestDriverHysteresis(t *testing.T) {
	cur := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 16)}
	d := NewDriver(Policy{HoldFor: 3, MinOps: 100})

	// Thin window: never acts, never builds a streak.
	dec, err := d.Evaluate(cur, Mix(0.95, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Swap || dec.Hold != 0 {
		t.Fatalf("thin window must not act: %+v", dec)
	}

	for i := 1; i <= 3; i++ {
		dec, err = d.Evaluate(cur, Mix(0.95, 0, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Hold != i {
			t.Fatalf("eval %d: hold %d", i, dec.Hold)
		}
		if (i < 3) && dec.Swap {
			t.Fatalf("eval %d: swapped before HoldFor", i)
		}
	}
	if !dec.Swap {
		t.Fatal("no swap after HoldFor consecutive wins")
	}
	// The streak resets after a swap decision.
	dec, err = d.Evaluate(cur, Mix(0.95, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hold != 1 || dec.Swap {
		t.Fatalf("streak should restart after swap: %+v", dec)
	}
	// An interleaved thin window also resets the streak.
	if _, err = d.Evaluate(cur, Mix(0.95, 0, 1)); err != nil {
		t.Fatal(err)
	}
	dec, err = d.Evaluate(cur, Mix(0.95, 0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hold != 1 {
		t.Fatalf("hold should restart after a thin window: %+v", dec)
	}
}

func TestWindowSlidingAndRoundTrip(t *testing.T) {
	w := NewWindow(800 * time.Millisecond)
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	for i := 0; i < 100; i++ {
		w.Observe(at(i), i%2 == 0, 100*time.Microsecond, false, uint64(i%4))
	}
	w.ObserveBatch(at(100), 8)
	w.ObserveWriteback(at(100), 3)
	wl := w.Snapshot(at(100))
	if wl.Ops() != 100 || wl.Reads != 50 {
		t.Fatalf("snapshot %+v", wl)
	}
	if wl.WritebackFrac() != 3.0/50 {
		t.Fatalf("writeback frac %v", wl.WritebackFrac())
	}
	if wl.AvgBatch() != 8 {
		t.Fatalf("avg batch %v", wl.AvgBatch())
	}
	// Everything expires after more than a full span of silence.
	wl = w.Snapshot(at(2000))
	if wl.Ops() != 0 {
		t.Fatalf("window did not expire: %+v", wl)
	}
	// Ops land again after expiry.
	w.Observe(at(2001), true, time.Millisecond, true, 7)
	wl = w.Snapshot(at(2001))
	if wl.Ops() != 1 || wl.Errors != 1 {
		t.Fatalf("post-expiry snapshot %+v", wl)
	}

	enc := wl.Encode(nil)
	back, err := DecodeWorkload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back != wl {
		t.Fatalf("round trip: got %+v want %+v", back, wl)
	}

	w.Reset()
	if got := w.Snapshot(at(3000)); got.Ops() != 0 {
		t.Fatalf("reset window not empty: %+v", got)
	}
}

// TestExactAvailAgainstBruteForce cross-checks the closed forms (binomial
// tail, hmaj joint recursion) and the structural enumeration against a
// direct sweep over every live set using the pickers themselves as the
// ground-truth satisfiability oracle.
func TestExactAvailAgainstBruteForce(t *testing.T) {
	const p = 0.2
	configs := []epoch.Params{
		{Flavor: epoch.FlavorMajority, R: 3, W: 5, Members: epoch.MemberRange(0, 7)},
		{Flavor: epoch.FlavorHMaj, Rows: 3, RL: []int{2, 2}, WL: []int{2, 3}, Members: epoch.MemberRange(0, 9)},
		{Flavor: epoch.FlavorHGrid, Rows: 3, Cols: 3, Members: epoch.MemberRange(0, 9)},
		{Flavor: epoch.FlavorHTGrid, Rows: 3, Cols: 3, Members: epoch.MemberRange(0, 9)},
	}
	rng := rand.New(rand.NewSource(5))
	for _, cfg := range configs {
		m := len(cfg.Members)
		pk, err := epoch.NewPickers(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var readAvail, writeAvail, bothAvail float64
		live := bitset.New(m)
		for mask := uint64(0); mask < 1<<uint(m); mask++ {
			live.SetWord(mask)
			prob := 1.0
			for i := 0; i < m; i++ {
				if live.Contains(i) {
					prob *= 1 - p
				} else {
					prob *= p
				}
			}
			_, rerr := pk.Read(rng, live)
			_, werr := pk.Write(rng, live)
			if rerr == nil {
				readAvail += prob
			}
			if werr == nil {
				writeAvail += prob
			}
			if rerr == nil && werr == nil {
				bothAvail += prob
			}
		}
		av, err := exactAvail(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range [][2]float64{{av.read, readAvail}, {av.write, writeAvail}, {av.both, bothAvail}} {
			if math.Abs(pair[0]-pair[1]) > 1e-9 {
				t.Fatalf("%v: exact avail %v vs brute force %v", cfg, pair[0], pair[1])
			}
		}
	}
}
