// Package tuner closes the loop between the measurement half of this
// repository (transport stats, latency histograms) and the control half
// (epoch-versioned live reconfiguration): a sliding-window workload
// profiler, an optimizer that scores every live-path quorum configuration
// against the measured read/write mix with the exact availability and
// load machinery from internal/analysis and internal/loadopt, and a
// driver policy that proposes an epoch swap when a different
// configuration wins by a margin and holds the win.
//
// The package sits below internal/rkv (which embeds the profiler and
// driver) and above internal/epoch (whose Params are the optimizer's
// search space) — it never imports the live protocols.
package tuner

import (
	"sync"
	"time"

	"hquorum/internal/codec"
)

// windowBuckets is the ring size of the profiler: the window always
// covers between (windowBuckets-1)/windowBuckets and the full span of
// history, rotating one bucket at a time so old traffic expires without
// per-op timestamps.
const windowBuckets = 8

// heavySlots bounds the Misra-Gries heavy-hitter table that estimates key
// skew. Eight slots resolve any key holding more than ~1/9 of the
// traffic, which is the regime where skew starts to matter for placement.
const heavySlots = 8

// bucket accumulates one slice of the sliding window.
type bucket struct {
	reads, writes uint64
	errors        uint64
	writebacks    uint64
	batches       uint64
	batchedOps    uint64
	latSumUs      uint64
}

func (b *bucket) add(o *bucket) {
	b.reads += o.reads
	b.writes += o.writes
	b.errors += o.errors
	b.writebacks += o.writebacks
	b.batches += o.batches
	b.batchedOps += o.batchedOps
	b.latSumUs += o.latSumUs
}

// Window is a cheap sliding-window workload profiler. Time is supplied by
// the caller as a monotonic duration (the cluster clock in simulation,
// time.Since(start) on a live node), so the profiler behaves identically
// under the deterministic simulator and on real hardware. All methods are
// safe for concurrent use: the node's event loop observes, while metrics
// endpoints and workload requests snapshot.
type Window struct {
	mu       sync.Mutex
	span     time.Duration
	slice    time.Duration
	buckets  [windowBuckets]bucket
	cur      int
	curStart time.Duration
	started  bool

	heavyHash  [heavySlots]uint64
	heavyCount [heavySlots]uint64
	heavyOps   uint64
}

// NewWindow returns a profiler whose snapshots cover roughly the last
// span of traffic (at least span·(N-1)/N, at most span, N=8 buckets).
// A zero span defaults to 2s.
func NewWindow(span time.Duration) *Window {
	if span <= 0 {
		span = 2 * time.Second
	}
	return &Window{span: span, slice: span / windowBuckets}
}

// Span returns the window's configured span.
func (w *Window) Span() time.Duration {
	return w.span
}

// rotate expires buckets older than the span. Callers hold w.mu.
func (w *Window) rotate(now time.Duration) {
	if !w.started {
		w.started = true
		w.curStart = now
		return
	}
	for now-w.curStart >= w.slice {
		w.cur = (w.cur + 1) % windowBuckets
		w.buckets[w.cur] = bucket{}
		w.curStart += w.slice
		// Decay the heavy-hitter table a quarter per slice so the skew
		// estimate tracks the window rather than all of history.
		for i := range w.heavyCount {
			w.heavyCount[i] -= w.heavyCount[i] / 4
		}
		w.heavyOps -= w.heavyOps / 4
		if now-w.curStart >= time.Duration(windowBuckets)*w.slice {
			// Everything expired; jump instead of spinning.
			for i := range w.buckets {
				w.buckets[i] = bucket{}
			}
			w.curStart = now
		}
	}
}

// Observe records one completed client operation.
func (w *Window) Observe(now time.Duration, read bool, latency time.Duration, failed bool, keyHash uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(now)
	b := &w.buckets[w.cur]
	if read {
		b.reads++
	} else {
		b.writes++
	}
	if failed {
		b.errors++
	}
	us := uint64(latency / time.Microsecond)
	b.latSumUs += us
	w.observeKey(keyHash)
}

// ObserveWriteback records that a read paid a write-back phase — the
// optimizer's measured β, which prices reads at R + β·W messages.
func (w *Window) ObserveWriteback(now time.Duration, reads int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(now)
	w.buckets[w.cur].writebacks += uint64(reads)
}

// ObserveBatch records one quorum round carrying ops coalesced client
// operations.
func (w *Window) ObserveBatch(now time.Duration, ops int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(now)
	b := &w.buckets[w.cur]
	b.batches++
	b.batchedOps += uint64(ops)
}

// observeKey is Misra-Gries: increment a held slot, claim a free one, or
// decay everyone. Callers hold w.mu.
func (w *Window) observeKey(h uint64) {
	w.heavyOps++
	free := -1
	for i, hh := range w.heavyHash {
		if w.heavyCount[i] == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if hh == h {
			w.heavyCount[i]++
			return
		}
	}
	if free >= 0 {
		w.heavyHash[free] = h
		w.heavyCount[free] = 1
		return
	}
	for i := range w.heavyCount {
		w.heavyCount[i]--
	}
}

// Snapshot sums the live buckets into a Workload.
func (w *Window) Snapshot(now time.Duration) Workload {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.rotate(now)
	var sum bucket
	for i := range w.buckets {
		sum.add(&w.buckets[i])
	}
	var top uint64
	for _, c := range w.heavyCount {
		if c > top {
			top = c
		}
	}
	return Workload{
		SpanUs:     uint64(w.span / time.Microsecond),
		Reads:      sum.reads,
		Writes:     sum.writes,
		Errors:     sum.errors,
		Writebacks: sum.writebacks,
		Batches:    sum.batches,
		BatchedOps: sum.batchedOps,
		LatSumUs:   sum.latSumUs,
		TopKeyOps:  top,
		KeyOps:     w.heavyOps,
	}
}

// Reset clears all history (a node restart must not tune on pre-crash
// traffic).
func (w *Window) Reset() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.buckets {
		w.buckets[i] = bucket{}
	}
	w.cur = 0
	w.curStart = 0
	w.started = false
	w.heavyHash = [heavySlots]uint64{}
	w.heavyCount = [heavySlots]uint64{}
	w.heavyOps = 0
}

// Workload is one profiler snapshot: the measured mix the optimizer
// scores configurations against. It is a plain value, encodable for the
// msgWorkload wire exchange.
type Workload struct {
	SpanUs     uint64 // window span, microseconds
	Reads      uint64
	Writes     uint64
	Errors     uint64
	Writebacks uint64 // reads that paid a write-back phase
	Batches    uint64 // quorum rounds
	BatchedOps uint64 // client ops carried by those rounds
	LatSumUs   uint64 // summed op latency, microseconds
	TopKeyOps  uint64 // ops on the heaviest key (Misra-Gries estimate)
	KeyOps     uint64 // ops the key tracker has seen (decayed)
}

// Ops returns the total operations in the window.
func (wl Workload) Ops() uint64 { return wl.Reads + wl.Writes }

// ReadFrac returns the measured read fraction (0.5 when idle, so an empty
// window scores like a balanced mix instead of a degenerate one).
func (wl Workload) ReadFrac() float64 {
	if wl.Ops() == 0 {
		return 0.5
	}
	return float64(wl.Reads) / float64(wl.Ops())
}

// ReadHeavy reports whether the window justifies holding read leases:
// at least minOps operations measured and a read fraction of at least
// minFrac. With minOps and minFrac both zero every window qualifies —
// always-grant mode, used by chaos cells that exercise invalidation.
func (wl Workload) ReadHeavy(minOps uint64, minFrac float64) bool {
	if wl.Ops() < minOps {
		return false
	}
	return wl.ReadFrac() >= minFrac
}

// WritebackFrac returns β, the measured fraction of reads that paid a
// write-back phase.
func (wl Workload) WritebackFrac() float64 {
	if wl.Reads == 0 {
		return 0
	}
	f := float64(wl.Writebacks) / float64(wl.Reads)
	if f > 1 {
		f = 1
	}
	return f
}

// AvgBatch returns the mean ops per quorum round (1 when unbatched).
func (wl Workload) AvgBatch() float64 {
	if wl.Batches == 0 {
		return 1
	}
	return float64(wl.BatchedOps) / float64(wl.Batches)
}

// AvgLatency returns the mean op latency over the window.
func (wl Workload) AvgLatency() time.Duration {
	if wl.Ops() == 0 {
		return 0
	}
	return time.Duration(wl.LatSumUs/wl.Ops()) * time.Microsecond
}

// KeySkew returns the estimated fraction of traffic on the hottest key.
func (wl Workload) KeySkew() float64 {
	if wl.KeyOps == 0 {
		return 0
	}
	return float64(wl.TopKeyOps) / float64(wl.KeyOps)
}

// Encode appends the workload's wire form (varint fields) to b.
func (wl Workload) Encode(b []byte) []byte {
	for _, v := range [...]uint64{
		wl.SpanUs, wl.Reads, wl.Writes, wl.Errors, wl.Writebacks,
		wl.Batches, wl.BatchedOps, wl.LatSumUs, wl.TopKeyOps, wl.KeyOps,
	} {
		b = codec.AppendUvarint(b, v)
	}
	return b
}

// DecodeWorkload parses the wire form produced by Encode.
func DecodeWorkload(data []byte) (Workload, error) {
	r := codec.NewReader(data)
	var wl Workload
	for _, f := range [...]*uint64{
		&wl.SpanUs, &wl.Reads, &wl.Writes, &wl.Errors, &wl.Writebacks,
		&wl.Batches, &wl.BatchedOps, &wl.LatSumUs, &wl.TopKeyOps, &wl.KeyOps,
	} {
		*f = r.Uvarint()
	}
	return wl, r.Err()
}

// Mix returns a synthetic workload with the given read fraction and
// write-back fraction — what `quorumctl tune -read-frac` scores when the
// operator overrides the measured mix.
func Mix(readFrac, writebackFrac float64, ops uint64) Workload {
	if readFrac < 0 {
		readFrac = 0
	}
	if readFrac > 1 {
		readFrac = 1
	}
	reads := uint64(readFrac * float64(ops))
	return Workload{
		Reads:      reads,
		Writes:     ops - reads,
		Writebacks: uint64(writebackFrac * float64(reads)),
	}
}
