package tuner

import (
	"sort"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
)

// Candidate is one scored configuration.
type Candidate struct {
	Params epoch.Params
	Score  Score
}

// Candidates enumerates every live-path configuration the optimizer
// considers over a fixed member set:
//
//   - majority: the legacy symmetric config plus every cost-minimal
//     asymmetric threshold pair (R+W = n+1 with 2W > n — anything with a
//     larger sum is strictly more expensive with no extra read/write
//     intersection, though W above the minimum buys write availability,
//     which the symmetric config already maximizes for its cost).
//   - hmaj: every factorization n = d^L (d >= 2, L >= 2) with every
//     combination of valid per-level thresholds (r+w > d, 2w > d). If a
//     factorization explodes combinatorially the sweep keeps only the
//     uniform combinations (the same pair at every level).
//   - hgrid and htgrid: every grid shape r×c = n with r, c >= 2.
//   - htriang: when n is a triangular number k(k+1)/2.
//
// Membership is held fixed: the tuner re-shapes the quorum geometry, it
// does not grow or shrink the cluster.
func Candidates(members []cluster.NodeID) []epoch.Params {
	n := len(members)
	mcopy := func() []cluster.NodeID { return append([]cluster.NodeID(nil), members...) }
	var out []epoch.Params

	// Majority family.
	out = append(out, epoch.Params{Flavor: epoch.FlavorMajority, Members: mcopy()})
	for w := n/2 + 1; w <= n; w++ {
		r := n + 1 - w
		if r < 1 || (r == w && r == n/2+1) {
			continue // the symmetric config is already listed
		}
		out = append(out, epoch.Params{Flavor: epoch.FlavorMajority, R: r, W: w, Members: mcopy()})
	}

	// Hierarchical threshold family: n = d^L.
	for d := 2; d*d <= n; d++ {
		levels := 0
		leaves := 1
		for leaves < n {
			leaves *= d
			levels++
		}
		if leaves != n || levels < 2 {
			continue
		}
		var pairs [][2]int
		for w := d/2 + 1; w <= d; w++ {
			for r := d + 1 - w; r <= d; r++ {
				pairs = append(pairs, [2]int{r, w})
			}
		}
		combos := 1
		for i := 0; i < levels; i++ {
			combos *= len(pairs)
			if combos > 64 {
				break
			}
		}
		if combos > 64 {
			// Uniform thresholds only.
			for _, pr := range pairs {
				rl := make([]int, levels)
				wl := make([]int, levels)
				for i := range rl {
					rl[i], wl[i] = pr[0], pr[1]
				}
				out = append(out, epoch.Params{Flavor: epoch.FlavorHMaj, Rows: d, RL: rl, WL: wl, Members: mcopy()})
			}
			continue
		}
		idx := make([]int, levels)
		for {
			rl := make([]int, levels)
			wl := make([]int, levels)
			for i, j := range idx {
				rl[i], wl[i] = pairs[j][0], pairs[j][1]
			}
			out = append(out, epoch.Params{Flavor: epoch.FlavorHMaj, Rows: d, RL: rl, WL: wl, Members: mcopy()})
			carry := levels - 1
			for carry >= 0 {
				idx[carry]++
				if idx[carry] < len(pairs) {
					break
				}
				idx[carry] = 0
				carry--
			}
			if carry < 0 {
				break
			}
		}
	}

	// Grid families.
	for r := 2; r <= n/2; r++ {
		if n%r != 0 {
			continue
		}
		c := n / r
		if c < 2 {
			continue
		}
		out = append(out, epoch.Params{Flavor: epoch.FlavorHGrid, Rows: r, Cols: c, Members: mcopy()})
		out = append(out, epoch.Params{Flavor: epoch.FlavorHTGrid, Rows: r, Cols: c, Members: mcopy()})
	}

	// Triangle.
	for k := 2; k*(k+1)/2 <= n; k++ {
		if k*(k+1)/2 == n {
			out = append(out, epoch.Params{Flavor: epoch.FlavorHTriang, Rows: k, Members: mcopy()})
		}
	}
	return out
}

// Search scores every candidate over the member set against the measured
// workload and returns them ranked: feasible candidates first by
// ascending cost (ties broken toward lower peak load, then the stable
// enumeration order), infeasible candidates after, also by cost.
func Search(members []cluster.NodeID, wl Workload, opt Options) ([]Candidate, error) {
	params := Candidates(members)
	out := make([]Candidate, 0, len(params))
	for _, p := range params {
		s, err := ScoreParams(p, wl, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, Candidate{Params: p, Score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Score, out[j].Score
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.MaxLoad < b.MaxLoad
	})
	return out, nil
}
