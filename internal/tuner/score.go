package tuner

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/epoch"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/loadopt"
)

// Options parameterize the optimizer's model of the world.
type Options struct {
	// FailP is the per-node failure probability the availability
	// constraint is evaluated at. Default 0.1.
	FailP float64
	// MinAvail is the floor on mix-weighted availability: a candidate
	// whose expected fraction of servable operations at FailP falls
	// below it is infeasible no matter how cheap. Default 0.998 — tight
	// enough that structurally fragile write quorums (grid full lines,
	// aggressive hierarchical thresholds) only become eligible when the
	// measured mix rarely exercises them.
	MinAvail float64
	// Samples sizes the quorum-pick load sampler. Default 512; results
	// are memoized per configuration, so this is a one-time cost.
	Samples int
}

func (o Options) withDefaults() Options {
	if o.FailP == 0 {
		o.FailP = 0.1
	}
	if o.MinAvail == 0 {
		o.MinAvail = 0.998
	}
	if o.Samples == 0 {
		o.Samples = 512
	}
	return o
}

// Score is the optimizer's verdict on one configuration under one
// measured workload.
type Score struct {
	// ReadSize and WriteSize are the average quorum cardinalities of one
	// read phase and one write phase.
	ReadSize, WriteSize float64
	// Cost is the mix-weighted expected messages per client operation:
	// reads cost ReadSize + β·WriteSize (β = measured write-back
	// fraction), writes cost ReadSize + WriteSize (ABD phase 1 + 2).
	Cost float64
	// MaxLoad is the mix-weighted load on the busiest member (per-op
	// access probability); 1/MaxLoad is proportional to the cluster's
	// capacity ceiling when replicas saturate before the network does.
	MaxLoad float64
	// ReadAvail, WriteAvail and Avail are exact availabilities at FailP:
	// the probability a read quorum exists, a write quorum exists, and
	// the mix-weighted probability an arbitrary operation finds the
	// quorums it needs.
	ReadAvail, WriteAvail, Avail float64
	// Feasible reports Avail >= MinAvail.
	Feasible bool
}

// Gain returns how much cheaper o is than s (a Gain of 2 means o costs
// half the messages per op).
func (s Score) Gain(o Score) float64 {
	if o.Cost == 0 {
		return 0
	}
	return s.Cost / o.Cost
}

// pickStats are the workload-independent sampled properties of one
// configuration: average quorum sizes and per-member access vectors.
type pickStats struct {
	readSize, writeSize float64
	readPer, writePer   []float64
}

// availStats are the workload-independent exact availabilities of one
// configuration at one FailP.
type availStats struct {
	read, write, both float64
}

var (
	scoreMu    sync.Mutex
	pickMemo   = map[string]pickStats{}
	availMemo  = map[string]availStats{}
	countsMemo = map[string][3][]uint64{}
)

// normalize maps params onto the dense member space 0..m-1: every scored
// quantity (size, load shape, availability) is invariant under the global
// IDs, so the memo can be shared across member sets of equal cardinality.
func normalize(p epoch.Params) epoch.Params {
	q := p
	q.Members = epoch.MemberRange(0, len(p.Members))
	return q
}

func memoKey(p epoch.Params) string {
	return string(normalize(p).Encode(nil))
}

// sampledStats draws Samples read and write quorums from the fully-live
// member set with a fixed-seed rng (deterministic across processes, so
// chaos re-runs stay byte-identical) and memoizes the result.
func sampledStats(p epoch.Params, samples int) (pickStats, error) {
	key := fmt.Sprintf("%s|%d", memoKey(p), samples)
	scoreMu.Lock()
	st, ok := pickMemo[key]
	scoreMu.Unlock()
	if ok {
		return st, nil
	}
	np := normalize(p)
	m := len(np.Members)
	pk, err := epoch.NewPickers(m, np)
	if err != nil {
		return pickStats{}, err
	}
	live := bitset.Universe(m)
	rng := rand.New(rand.NewSource(int64(len(np.Encode(nil))*1000003 + m)))
	var pickErr error
	read := loadopt.MeasureSampler(m, func(r *rand.Rand) bitset.Set {
		q, err := pk.Read(r, live)
		if err != nil && pickErr == nil {
			pickErr = err
		}
		return q
	}, rng, samples)
	write := loadopt.MeasureSampler(m, func(r *rand.Rand) bitset.Set {
		q, err := pk.Write(r, live)
		if err != nil && pickErr == nil {
			pickErr = err
		}
		return q
	}, rng, samples)
	if pickErr != nil {
		return pickStats{}, pickErr
	}
	st = pickStats{
		readSize:  read.AvgQuorumSize,
		writeSize: write.AvgQuorumSize,
		readPer:   read.PerElement,
		writePer:  write.PerElement,
	}
	scoreMu.Lock()
	pickMemo[key] = st
	scoreMu.Unlock()
	return st, nil
}

// exactAvail computes the probability, at per-node failure probability p,
// that a read quorum exists, a write quorum exists, and both exist.
// Threshold flavors use closed forms; the structural flavors enumerate
// all 2^m live sets exactly (memoized) up to m=20 and fall back to a
// fixed-seed Monte Carlo beyond.
func exactAvail(pr epoch.Params, p float64) (availStats, error) {
	key := fmt.Sprintf("%s|%g", memoKey(pr), p)
	scoreMu.Lock()
	st, ok := availMemo[key]
	scoreMu.Unlock()
	if ok {
		return st, nil
	}
	np := normalize(pr)
	m := len(np.Members)
	q := 1 - p
	var err error
	switch np.Flavor {
	case epoch.FlavorMajority:
		r, w := np.R, np.W
		if r == 0 {
			r = m/2 + 1
		}
		if w == 0 {
			w = m/2 + 1
		}
		st.read = binomTail(m, q, r)
		st.write = binomTail(m, q, w)
		st.both = binomTail(m, q, max(r, w))
	case epoch.FlavorHMaj:
		st = hmajAvail(np.Rows, np.RL, np.WL, q)
	default:
		st, err = structuralAvail(np, p)
		if err != nil {
			return availStats{}, err
		}
	}
	scoreMu.Lock()
	availMemo[key] = st
	scoreMu.Unlock()
	return st, nil
}

// binomTail returns P(Bin(n, q) >= k): the probability at least k of n
// independent members (each alive with probability q) survive.
func binomTail(n int, q float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += analysis.Binomial(n, i) * math.Pow(q, float64(i)) * math.Pow(1-q, float64(n-i))
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// hmajAvail composes per-subtree joint probabilities bottom-up. For each
// subtree it tracks the joint distribution over (read-satisfiable,
// write-satisfiable): the four probabilities p11, p10, p01, p00. A leaf
// is 11 with probability q. An internal node at level i needs RL[i]
// read-capable children and WL[i] write-capable children out of degree d;
// the child states are iid, so a trinomial sweep over (both, read-only,
// write-only) counts gives the exact joint law.
func hmajAvail(degree int, rl, wl []int, q float64) availStats {
	p11, p10, p01 := q, 0.0, 0.0
	for lvl := len(rl) - 1; lvl >= 0; lvl-- {
		r, w := rl[lvl], wl[lvl]
		d := degree
		var n11, n10, n01 float64
		p00 := 1 - p11 - p10 - p01
		if p00 < 0 {
			p00 = 0
		}
		// a children are both-capable, b read-only, c write-only.
		for a := 0; a <= d; a++ {
			pa := analysis.Binomial(d, a) * math.Pow(p11, float64(a))
			if pa == 0 && p11 != 0 {
				continue
			}
			for b := 0; a+b <= d; b++ {
				pb := analysis.Binomial(d-a, b) * math.Pow(p10, float64(b))
				for c := 0; a+b+c <= d; c++ {
					rest := d - a - b - c
					pc := analysis.Binomial(d-a-b, c) * math.Pow(p01, float64(c)) * math.Pow(p00, float64(rest))
					pr := pa * pb * pc
					if pr == 0 {
						continue
					}
					readOK := a+b >= r
					writeOK := a+c >= w
					switch {
					case readOK && writeOK:
						n11 += pr
					case readOK:
						n10 += pr
					case writeOK:
						n01 += pr
					}
				}
			}
		}
		p11, p10, p01 = n11, n10, n01
	}
	return availStats{read: p11 + p10, write: p11 + p01, both: p11}
}

// rwPredicates returns the read and write availability predicates of a
// structural flavor over the dense space.
func rwPredicates(np epoch.Params) (read, write func(bitset.Set) bool, err error) {
	switch np.Flavor {
	case epoch.FlavorHGrid:
		h := hgrid.Auto(np.Rows, np.Cols)
		return h.HasRowCover, h.HasFullLine, nil
	case epoch.FlavorHTGrid:
		h := hgrid.Auto(np.Rows, np.Cols)
		sys := htgrid.New(h)
		return h.HasRowCover, sys.Available, nil
	case epoch.FlavorHTriang:
		sys := htriang.New(np.Rows)
		return sys.Available, sys.Available, nil
	default:
		return nil, nil, fmt.Errorf("tuner: no availability predicates for flavor %v", np.Flavor)
	}
}

// structuralAvail enumerates every live set of a structural flavor (grid,
// triangle) once, accumulating failure-set counts for the read predicate,
// the write predicate and their conjunction, then evaluates the three
// failure polynomials at p. Beyond 20 members it estimates by fixed-seed
// Monte Carlo instead.
func structuralAvail(np epoch.Params, p float64) (availStats, error) {
	read, write, err := rwPredicates(np)
	if err != nil {
		return availStats{}, err
	}
	m := len(np.Members)
	if m > 20 {
		rng := rand.New(rand.NewSource(int64(m)*7919 + int64(np.Flavor)))
		const samples = 200000
		live := bitset.New(m)
		var okR, okW, okB int
		for i := 0; i < samples; i++ {
			live.Clear()
			for j := 0; j < m; j++ {
				if rng.Float64() >= p {
					live.Add(j)
				}
			}
			r, w := read(live), write(live)
			if r {
				okR++
			}
			if w {
				okW++
			}
			if r && w {
				okB++
			}
		}
		return availStats{
			read:  float64(okR) / samples,
			write: float64(okW) / samples,
			both:  float64(okB) / samples,
		}, nil
	}
	ckey := memoKey(np)
	scoreMu.Lock()
	counts, ok := countsMemo[ckey]
	scoreMu.Unlock()
	if !ok {
		for i := range counts {
			counts[i] = make([]uint64, m+1)
		}
		live := bitset.New(m)
		total := uint64(1) << uint(m)
		for mask := uint64(0); mask < total; mask++ {
			live.SetWord(mask)
			dead := m - live.Count()
			r, w := read(live), write(live)
			if !r {
				counts[0][dead]++
			}
			if !w {
				counts[1][dead]++
			}
			if !r || !w {
				counts[2][dead]++
			}
		}
		scoreMu.Lock()
		countsMemo[ckey] = counts
		scoreMu.Unlock()
	}
	return availStats{
		read:  1 - analysis.Failure(counts[0], p),
		write: 1 - analysis.Failure(counts[1], p),
		both:  1 - analysis.Failure(counts[2], p),
	}, nil
}

// ScoreParams evaluates one configuration against a measured workload:
// message cost and peak member load weighted by the observed read
// fraction and write-back rate, and exact mix-weighted availability at
// FailP. Every expensive sub-result is memoized per configuration shape,
// so steady-state re-scoring is effectively free.
func ScoreParams(p epoch.Params, wl Workload, opt Options) (Score, error) {
	opt = opt.withDefaults()
	st, err := sampledStats(p, opt.Samples)
	if err != nil {
		return Score{}, err
	}
	av, err := exactAvail(p, opt.FailP)
	if err != nil {
		return Score{}, err
	}
	f := wl.ReadFrac()
	beta := wl.WritebackFrac()

	readCost := st.readSize + beta*st.writeSize
	writeCost := st.readSize + st.writeSize
	cost := f*readCost + (1-f)*writeCost

	maxLoad := 0.0
	for i := range st.readPer {
		rl := st.readPer[i] + beta*st.writePer[i]
		wlw := st.readPer[i] + st.writePer[i]
		l := f*rl + (1-f)*wlw
		if l > maxLoad {
			maxLoad = l
		}
	}

	readOpAvail := (1-beta)*av.read + beta*av.both
	avail := f*readOpAvail + (1-f)*av.both

	s := Score{
		ReadSize:  st.readSize,
		WriteSize: st.writeSize,
		Cost:      cost,
		MaxLoad:   maxLoad,
		ReadAvail: av.read,
		WriteAvail: av.write,
		Avail:     avail,
		Feasible:  avail >= opt.MinAvail,
	}
	return s, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
