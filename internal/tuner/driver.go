package tuner

import (
	"time"

	"hquorum/internal/epoch"
)

// Policy says when the driver may re-shape the cluster. The zero value of
// every field means "use the default", so `&tuner.Policy{}` is a sane
// auto-tune configuration.
type Policy struct {
	// Interval is how often the driver wakes up and re-scores the
	// candidate space against the profiler window. Default 250ms.
	Interval time.Duration
	// Span is the profiler window the decisions are based on. Default
	// 8×Interval.
	Span time.Duration
	// HoldFor is how many consecutive evaluations the same winner must
	// survive before the driver triggers a reconfiguration — the
	// hysteresis that keeps a noisy mix from thrashing epochs. Default 2.
	HoldFor int
	// MinGain is the cost ratio (current/winner) a winner must clear.
	// Default 1.25.
	MinGain float64
	// MinOps is the minimum operations in the window worth acting on.
	// Default 32.
	MinOps uint64
	// FailP, MinAvail and Samples parameterize the optimizer; see
	// Options.
	FailP    float64
	MinAvail float64
	Samples  int
}

// WithDefaults fills zero fields.
func (p Policy) WithDefaults() Policy {
	if p.Interval <= 0 {
		p.Interval = 250 * time.Millisecond
	}
	if p.Span <= 0 {
		p.Span = 8 * p.Interval
	}
	if p.HoldFor <= 0 {
		p.HoldFor = 2
	}
	if p.MinGain <= 0 {
		p.MinGain = 1.25
	}
	if p.MinOps == 0 {
		p.MinOps = 32
	}
	return p
}

func (p Policy) options() Options {
	return Options{FailP: p.FailP, MinAvail: p.MinAvail, Samples: p.Samples}.withDefaults()
}

// Decision is one evaluation's outcome.
type Decision struct {
	// Current is the running configuration's score under the measured
	// workload (scored even when infeasible — it is what the cluster
	// does today).
	Current Candidate
	// Best is the cheapest feasible candidate, which may equal Current.
	Best Candidate
	// Gain is Current.Cost / Best.Cost.
	Gain float64
	// Hold is how many consecutive evaluations Best has won.
	Hold int
	// Swap reports that Best has beaten Current by MinGain for HoldFor
	// evaluations: the driver wants an epoch reconfiguration to
	// Best.Params.
	Swap bool
	// Ranked is the full scored candidate list (for operators; nil when
	// the evaluation aborted early for lack of traffic).
	Ranked []Candidate
}

// Driver applies a Policy across evaluations, tracking how long the
// current winner has held. It is not safe for concurrent use; the rkv
// node drives it from its event loop, quorumctl from main.
type Driver struct {
	pol    Policy
	lastFP uint64
	hold   int
}

// NewDriver returns a driver for the policy (defaults applied).
func NewDriver(pol Policy) *Driver {
	return &Driver{pol: pol.WithDefaults()}
}

// Policy returns the driver's effective policy.
func (d *Driver) Policy() Policy { return d.pol }

// Reset forgets the hold streak (after a reconfiguration or a restart).
func (d *Driver) Reset() {
	d.lastFP = 0
	d.hold = 0
}

// Evaluate scores the candidate space against one workload snapshot and
// applies the policy's gain and hysteresis rules.
func (d *Driver) Evaluate(cur epoch.Params, wl Workload) (Decision, error) {
	if wl.Ops() < d.pol.MinOps {
		d.Reset()
		cs, err := ScoreParams(cur, wl, d.pol.options())
		if err != nil {
			return Decision{}, err
		}
		c := Candidate{Params: cur, Score: cs}
		return Decision{Current: c, Best: c, Gain: 1}, nil
	}
	opt := d.pol.options()
	ranked, err := Search(cur.Members, wl, opt)
	if err != nil {
		return Decision{}, err
	}
	curScore, err := ScoreParams(cur, wl, opt)
	if err != nil {
		return Decision{}, err
	}
	dec := Decision{
		Current: Candidate{Params: cur, Score: curScore},
		Ranked:  ranked,
	}
	dec.Best = dec.Current
	for _, c := range ranked {
		if c.Score.Feasible {
			dec.Best = c
			break
		}
	}
	dec.Gain = curScore.Gain(dec.Best.Score)
	if dec.Best.Params.Equal(cur) || dec.Gain < d.pol.MinGain {
		d.Reset()
		return dec, nil
	}
	fp := epoch.Config{Cur: dec.Best.Params}.Fingerprint()
	if fp == d.lastFP {
		d.hold++
	} else {
		d.lastFP = fp
		d.hold = 1
	}
	dec.Hold = d.hold
	if d.hold >= d.pol.HoldFor {
		dec.Swap = true
		d.Reset()
	}
	return dec, nil
}
