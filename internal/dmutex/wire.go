package dmutex

import (
	"hquorum/internal/cluster"
	"hquorum/internal/codec"
)

// Fixed wire tags for the mutex protocol. These are wire format: once
// released they never change or get reused. The 0x20 block belongs to
// dmutex (rkv owns 0x10).
const (
	tagRequest    = 0x20
	tagGrant      = 0x21
	tagFailed     = 0x22
	tagInquire    = 0x23
	tagRelinquish = 0x24
	tagRelease    = 0x25
	tagBusy       = 0x26
)

// RegisterBinaryWire registers hand-written varint codecs for the
// protocol's wire messages, replacing the reflective gob fallback on the
// live transport's hot path. Every message carries the sender's
// configuration epoch and exactly one ReqID, so the seven registrations
// share an encoder shape.
func RegisterBinaryWire(reg *codec.Registry) {
	register := func(tag uint64, sample any, wrap func(uint64, ReqID) any, fields func(any) (uint64, ReqID)) {
		reg.Register(tag, sample,
			func(b []byte, v any) []byte {
				ep, r := fields(v)
				b = codec.AppendUvarint(b, ep)
				b = codec.AppendUvarint(b, r.TS)
				return codec.AppendUvarint(b, uint64(r.Origin))
			},
			func(data []byte) (any, error) {
				rd := codec.NewReader(data)
				ep := rd.Uvarint()
				r := ReqID{TS: rd.Uvarint(), Origin: cluster.NodeID(rd.Uvarint())}
				return wrap(ep, r), rd.Err()
			})
	}
	register(tagRequest, msgRequest{},
		func(ep uint64, r ReqID) any { return msgRequest{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgRequest); return m.Epoch, m.ID })
	register(tagGrant, msgGrant{},
		func(ep uint64, r ReqID) any { return msgGrant{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgGrant); return m.Epoch, m.ID })
	register(tagFailed, msgFailed{},
		func(ep uint64, r ReqID) any { return msgFailed{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgFailed); return m.Epoch, m.ID })
	register(tagInquire, msgInquire{},
		func(ep uint64, r ReqID) any { return msgInquire{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgInquire); return m.Epoch, m.ID })
	register(tagRelinquish, msgRelinquish{},
		func(ep uint64, r ReqID) any { return msgRelinquish{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgRelinquish); return m.Epoch, m.ID })
	register(tagRelease, msgRelease{},
		func(ep uint64, r ReqID) any { return msgRelease{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgRelease); return m.Epoch, m.ID })
	register(tagBusy, msgBusy{},
		func(ep uint64, r ReqID) any { return msgBusy{Epoch: ep, ID: r} },
		func(v any) (uint64, ReqID) { m := v.(msgBusy); return m.Epoch, m.ID })
}

// WireSamples returns one well-formed instance of every dmutex wire
// message, for seeding fuzz corpora over the real registry (see
// internal/codec's seed-corpus test).
func WireSamples() []any {
	id := ReqID{TS: 42, Origin: 3}
	return []any{
		msgRequest{Epoch: 2, ID: id}, msgGrant{Epoch: 2, ID: id},
		msgFailed{Epoch: 3, ID: id}, msgInquire{Epoch: 2, ID: id},
		msgRelinquish{Epoch: 2, ID: id}, msgRelease{Epoch: 2, ID: id},
		msgBusy{Epoch: 2, ID: id},
	}
}
