package dmutex

import (
	"hquorum/internal/cluster"
	"hquorum/internal/codec"
)

// Fixed wire tags for the mutex protocol. These are wire format: once
// released they never change or get reused. The 0x20 block belongs to
// dmutex (rkv owns 0x10).
const (
	tagRequest    = 0x20
	tagGrant      = 0x21
	tagFailed     = 0x22
	tagInquire    = 0x23
	tagRelinquish = 0x24
	tagRelease    = 0x25
	tagBusy       = 0x26
)

// RegisterBinaryWire registers hand-written varint codecs for the
// protocol's wire messages, replacing the reflective gob fallback on the
// live transport's hot path. Every message carries exactly one ReqID, so
// the seven registrations share an encoder shape.
func RegisterBinaryWire(reg *codec.Registry) {
	register := func(tag uint64, sample any, wrap func(ReqID) any, id func(any) ReqID) {
		reg.Register(tag, sample,
			func(b []byte, v any) []byte {
				r := id(v)
				b = codec.AppendUvarint(b, r.TS)
				return codec.AppendUvarint(b, uint64(r.Origin))
			},
			func(data []byte) (any, error) {
				rd := codec.NewReader(data)
				r := ReqID{TS: rd.Uvarint(), Origin: cluster.NodeID(rd.Uvarint())}
				return wrap(r), rd.Err()
			})
	}
	register(tagRequest, msgRequest{},
		func(r ReqID) any { return msgRequest{ID: r} },
		func(v any) ReqID { return v.(msgRequest).ID })
	register(tagGrant, msgGrant{},
		func(r ReqID) any { return msgGrant{ID: r} },
		func(v any) ReqID { return v.(msgGrant).ID })
	register(tagFailed, msgFailed{},
		func(r ReqID) any { return msgFailed{ID: r} },
		func(v any) ReqID { return v.(msgFailed).ID })
	register(tagInquire, msgInquire{},
		func(r ReqID) any { return msgInquire{ID: r} },
		func(v any) ReqID { return v.(msgInquire).ID })
	register(tagRelinquish, msgRelinquish{},
		func(r ReqID) any { return msgRelinquish{ID: r} },
		func(v any) ReqID { return v.(msgRelinquish).ID })
	register(tagRelease, msgRelease{},
		func(r ReqID) any { return msgRelease{ID: r} },
		func(v any) ReqID { return v.(msgRelease).ID })
	register(tagBusy, msgBusy{},
		func(r ReqID) any { return msgBusy{ID: r} },
		func(v any) ReqID { return v.(msgBusy).ID })
}

// WireSamples returns one well-formed instance of every dmutex wire
// message, for seeding fuzz corpora over the real registry (see
// internal/codec's seed-corpus test).
func WireSamples() []any {
	id := ReqID{TS: 42, Origin: 3}
	return []any{
		msgRequest{ID: id}, msgGrant{ID: id}, msgFailed{ID: id},
		msgInquire{ID: id}, msgRelinquish{ID: id}, msgRelease{ID: id},
		msgBusy{ID: id},
	}
}
