package dmutex

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"hquorum/internal/cluster"
	"hquorum/internal/codec"
)

// TestBinaryWireRoundTrip: all seven mutex messages survive the binary
// codec, and registration is idempotent.
func TestBinaryWireRoundTrip(t *testing.T) {
	reg := codec.NewRegistry()
	RegisterBinaryWire(reg)
	RegisterBinaryWire(reg) // idempotent

	rng := rand.New(rand.NewSource(5))
	id := func() ReqID {
		return ReqID{TS: rng.Uint64(), Origin: cluster.NodeID(rng.Intn(1 << 16))}
	}
	msgs := []any{
		msgRequest{ID: id()},
		msgGrant{ID: id()},
		msgFailed{ID: id()},
		msgInquire{ID: id()},
		msgRelinquish{ID: id()},
		msgRelease{ID: id()},
		msgBusy{ID: id()},
		msgRequest{}, // zero value
	}
	var buf bytes.Buffer
	enc := codec.NewEncoder(&buf, reg)
	for i, m := range msgs {
		if _, err := enc.Encode(uint64(i), m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
	}
	dec := codec.NewDecoder(bufio.NewReader(&buf), reg)
	for i, want := range msgs {
		from, got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if from != uint64(i) || !reflect.DeepEqual(got, want) {
			t.Fatalf("decode %d: from=%d got %#v want %#v", i, from, got, want)
		}
	}
}

// TestBinaryWireTagsDisjoint: dmutex and rkv registrations coexist in one
// registry — the tag blocks must not collide (rkv owns 0x10, dmutex 0x20).
func TestBinaryWireTagsDisjoint(t *testing.T) {
	reg := codec.NewRegistry()
	RegisterBinaryWire(reg)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("tag collision: %v", r)
		}
	}()
	// A probe type on the boundary tags must not be already taken.
	type probe struct{ X uint64 }
	reg.Register(0x27, probe{},
		func(b []byte, v any) []byte { return codec.AppendUvarint(b, v.(probe).X) },
		func(data []byte) (any, error) {
			r := codec.NewReader(data)
			return probe{X: r.Uvarint()}, r.Err()
		})
}
