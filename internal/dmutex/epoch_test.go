package dmutex

import (
	"errors"
	"testing"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
)

// TestEpochSwapUnderLoad reconfigures a loaded cluster from majority over
// nodes 0..8 to an h-grid over nodes 0..15 through a joint intermediate
// config, asserting mutual exclusion never breaks across the epoch
// boundary and every workload still completes. Config distribution is
// simulated by installing on every node's store between deterministic sim
// segments — the shape the shared rkv store produces in a real process.
func TestEpochSwapUnderLoad(t *testing.T) {
	const space = 16
	oldP := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 9)}
	newP := epoch.Params{Flavor: epoch.FlavorHGrid, Rows: 4, Cols: 4, Members: epoch.MemberRange(0, 16)}

	net := cluster.New(cluster.WithSeed(11), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	g := &guard{t: t}
	var nodes []*Node
	var stores []*epoch.Store
	for i := 0; i < space; i++ {
		st, err := epoch.NewStore(space, oldP)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
		n, err := NewNode(cluster.NodeID(i), Config{
			Epochs:       st,
			RetryTimeout: 200 * time.Millisecond,
			Workload:     Workload{Count: 3, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond},
			OnAcquire:    g.acquire,
			OnRelease:    g.release,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}

	net.Run(400 * time.Millisecond)
	joint := epoch.Config{Epoch: 2, Cur: newP, Old: &oldP}
	for _, st := range stores {
		if ok, err := st.Install(joint); !ok || err != nil {
			t.Fatalf("install joint: ok=%v err=%v", ok, err)
		}
	}
	net.Run(900 * time.Millisecond)
	final := epoch.Config{Epoch: 3, Cur: newP}
	for _, st := range stores {
		if ok, err := st.Install(final); !ok || err != nil {
			t.Fatalf("install final: ok=%v err=%v", ok, err)
		}
	}
	net.Run(30 * time.Second)

	total := 0
	for _, n := range nodes {
		if !n.Done() {
			t.Fatalf("node %d did not finish (entries %d, retries %d)", n.id, n.Entries, n.Retries)
		}
		total += n.Entries
	}
	if total != space*3 {
		t.Fatalf("entries = %d, want %d", total, space*3)
	}
}

// TestStaleEpochRequestRejected pins a requester to a superseded config:
// the arbiters, already at a newer epoch, reject every request, and the
// acquisition surfaces epoch.ErrStaleEpoch at its deadline instead of
// spinning forever.
func TestStaleEpochRequestRejected(t *testing.T) {
	const space = 3
	p := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 3)}

	net := cluster.New(cluster.WithSeed(5), cluster.WithLatency(time.Millisecond, 4*time.Millisecond))
	var fails []error
	for i := 0; i < space; i++ {
		st, err := epoch.NewStore(space, p)
		if err != nil {
			t.Fatal(err)
		}
		if i != 0 {
			// Arbiters have moved on; requester node 0 has not.
			if ok, err := st.Install(epoch.Config{Epoch: 4, Cur: p}); !ok || err != nil {
				t.Fatalf("install: ok=%v err=%v", ok, err)
			}
		}
		cfg := Config{Epochs: st, RetryTimeout: 50 * time.Millisecond}
		if i == 0 {
			cfg.Workload = Workload{Count: 1, Hold: time.Millisecond, Think: time.Millisecond}
			cfg.AcquireDeadline = 2 * time.Second
			cfg.OnFail = func(id cluster.NodeID, at time.Duration, err error) {
				fails = append(fails, err)
			}
		}
		n, err := NewNode(cluster.NodeID(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(20 * time.Second)
	if len(fails) != 1 {
		t.Fatalf("fails = %v, want exactly one", fails)
	}
	if !errors.Is(fails[0], epoch.ErrStaleEpoch) {
		t.Fatalf("fail error = %v, want ErrStaleEpoch", fails[0])
	}
}

// TestStaleThenCatchUp lets the pinned requester's store catch up mid
// acquisition: the retry re-picks under the new epoch and the lock is
// acquired with no error.
func TestStaleThenCatchUp(t *testing.T) {
	const space = 3
	p := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 3)}

	net := cluster.New(cluster.WithSeed(5), cluster.WithLatency(time.Millisecond, 4*time.Millisecond))
	acquired := 0
	var fails []error
	var lagging *epoch.Store
	for i := 0; i < space; i++ {
		st, err := epoch.NewStore(space, p)
		if err != nil {
			t.Fatal(err)
		}
		if i != 0 {
			if ok, err := st.Install(epoch.Config{Epoch: 4, Cur: p}); !ok || err != nil {
				t.Fatalf("install: ok=%v err=%v", ok, err)
			}
		} else {
			lagging = st
		}
		cfg := Config{Epochs: st, RetryTimeout: 50 * time.Millisecond}
		if i == 0 {
			cfg.Workload = Workload{Count: 1, Hold: time.Millisecond, Think: time.Millisecond}
			cfg.AcquireDeadline = 30 * time.Second
			cfg.OnAcquire = func(id cluster.NodeID, at time.Duration) { acquired++ }
			cfg.OnFail = func(id cluster.NodeID, at time.Duration, err error) {
				fails = append(fails, err)
			}
		}
		n, err := NewNode(cluster.NodeID(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(400 * time.Millisecond)
	if acquired != 0 {
		t.Fatal("stale requester acquired before catching up")
	}
	if ok, err := lagging.Install(epoch.Config{Epoch: 4, Cur: p}); !ok || err != nil {
		t.Fatalf("catch-up install: ok=%v err=%v", ok, err)
	}
	net.Run(20 * time.Second)
	if acquired != 1 || len(fails) != 0 {
		t.Fatalf("acquired=%d fails=%v, want one clean acquisition", acquired, fails)
	}
}
