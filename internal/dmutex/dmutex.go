// Package dmutex implements quorum-based distributed mutual exclusion in
// the style of Maekawa, parameterized by any quorum construction from this
// repository — the coordination protocol the paper's quorum systems exist
// to serve (§1).
//
// To enter the critical section a node picks a quorum and asks each member
// for its GRANT; a member grants one request at a time, so the intersection
// property guarantees mutual exclusion. Deadlocks between concurrent
// requests are broken with Lamport-priority INQUIRE / RELINQUISH / FAILED
// messages: an arbiter that granted a younger request probes it when an
// older one arrives, and a requester that knows it is losing hands its
// grants back. Crashed arbiters are handled by client-side timeouts: the
// requester releases its partial quorum, marks unresponsive members as
// suspects, and retries with a quorum drawn from the remaining nodes.
package dmutex

import (
	"fmt"
	"math/rand"
	"time"

	"hquorum/internal/bitset"
	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
	"hquorum/internal/quorum"
)

// ReqID orders requests: earlier Lamport timestamps win; node IDs break
// ties.
type ReqID struct {
	TS     uint64
	Origin cluster.NodeID
}

// Less reports whether r has priority over o.
func (r ReqID) Less(o ReqID) bool {
	if r.TS != o.TS {
		return r.TS < o.TS
	}
	return r.Origin < o.Origin
}

// Wire messages. Every message leads with the sender's configuration
// epoch (0 when the node is not epoch-versioned, see Config.Epochs): a
// stale-epoch REQUEST is rejected with an epoch-stamped FAILED, and busy
// keep-alives let an arbiter track which epoch its grantee last proved it
// was operating under.
type (
	msgRequest struct {
		Epoch uint64
		ID    ReqID
	}
	msgGrant struct {
		Epoch uint64
		ID    ReqID
	}
	msgFailed struct {
		Epoch uint64
		ID    ReqID
	}
	msgInquire struct {
		Epoch uint64
		ID    ReqID
	}
	msgRelinquish struct {
		Epoch uint64
		ID    ReqID
	}
	msgRelease struct {
		Epoch uint64
		ID    ReqID
	}
	// msgBusy is a keep-alive: a grantee that received INQUIRE but keeps
	// the grant (it is in the critical section, or still winning) answers
	// busy so the arbiter can tell a live contender from a crashed one.
	msgBusy struct {
		Epoch uint64
		ID    ReqID
	}
)

// Timer tokens.
type (
	tokenStart struct{}
	tokenHold  struct{ ID ReqID }
	tokenThink struct{}
	tokenRetry struct{ ID ReqID }
	tokenProbe struct{}
)

// Workload drives a node through Count critical sections, holding the lock
// for Hold and pausing Think between attempts.
type Workload struct {
	Count int
	Hold  time.Duration
	Think time.Duration
}

// Config parameterizes a node.
type Config struct {
	// System supplies quorums; all nodes must share the same construction.
	// Optional when Epochs is set.
	System quorum.System
	// Epochs, when non-nil, makes the node epoch-versioned: quorum picks
	// route through the store's current (possibly joint) configuration,
	// every outgoing message is stamped with the store's epoch, stale-epoch
	// requests are rejected with an epoch-stamped FAILED, and acquisitions
	// that keep losing to a newer configuration fail with
	// epoch.ErrStaleEpoch at their deadline. The store is shared with the
	// co-located rkv node, which owns config distribution — dmutex only
	// reads it. Takes precedence over System.
	Epochs *epoch.Store
	// RetryTimeout bounds how long a requester's attempt waits for a full
	// quorum before releasing and retrying, and doubles as the arbiter's
	// grantee-probe interval (default 500ms). Attempts whose quorum went
	// entirely silent back off exponentially — with jitter drawn from the
	// node's deterministic rng — up to MaxRetryTimeout; attempts that got
	// any reply retry at the base patience, since contention and message
	// loss are recovered by re-picking, not waiting.
	RetryTimeout time.Duration
	// MaxRetryTimeout caps the per-attempt backoff (default 8×RetryTimeout).
	MaxRetryTimeout time.Duration
	// AcquireDeadline bounds one acquisition across all its retries. When
	// it expires the attempt is abandoned and reported through OnFail with
	// a typed error instead of retrying forever: quorum.ErrNoQuorum when
	// every quorum contained a replica that went silent during the attempt,
	// quorum.ErrDegraded otherwise. Zero means no deadline.
	AcquireDeadline time.Duration
	// SuspectTTL ages out crash suspicions, so a crashed-then-restarted
	// arbiter rejoins quorum picks without operator intervention (default
	// 4×RetryTimeout; negative disables decay).
	SuspectTTL time.Duration
	// GranteeTimeout makes an arbiter reclaim its grant after that much
	// probe silence from the grantee, so a crashed lock holder cannot wedge
	// the cluster (default 8×RetryTimeout; negative disables reclamation).
	// Live grantees answer probes with busy keep-alives and are never
	// reclaimed; the tradeoff is that a *partitioned* live grantee can be
	// presumed dead, briefly violating safety — keep GranteeTimeout well
	// above expected partition-heal times when that matters.
	GranteeTimeout time.Duration
	// Workload is the node's critical-section schedule (zero Count = pure
	// arbiter).
	Workload Workload
	// OnAcquire and OnRelease observe critical-section entry/exit (used by
	// tests and benchmarks to assert mutual exclusion and count entries).
	OnAcquire func(id cluster.NodeID, at time.Duration)
	OnRelease func(id cluster.NodeID, at time.Duration)
	// OnFail observes acquisitions abandoned at their AcquireDeadline.
	OnFail func(id cluster.NodeID, at time.Duration, err error)
}

// arbiter is the per-node grant-management state.
type arbiter struct {
	grantedTo *ReqID
	queue     []ReqID       // pending requests, kept sorted by priority
	inquired  bool          // INQUIRE outstanding for grantedTo
	probing   bool          // periodic grantee probe armed
	lastHeard time.Duration // when the grantee last proved it was alive
	// grantEpoch is the configuration epoch the current grantee last
	// proved it was operating under (from its REQUEST, refreshed by busy
	// keep-alives); epochOf remembers the same for queued requests. A
	// grant whose epoch lags the arbiter's store is probed immediately —
	// the grantee either refreshes its epoch through a keep-alive or hands
	// the grant back, so a lock granted under an old configuration cannot
	// silently wedge the new one.
	grantEpoch uint64
	epochOf    map[ReqID]uint64
}

// requester is the per-node acquisition state.
type requester struct {
	active      bool
	id          ReqID
	quorum      bitset.Set
	grants      bitset.Set
	owed        bitset.Set // arbiters relinquished before their GRANT arrived
	responded   bitset.Set // quorum members that sent any reply this attempt
	failed      bool
	deferred    []cluster.NodeID // arbiters whose INQUIRE we deferred
	inCS        bool
	remaining   int
	suspects    bitset.Set
	suspectAt   []time.Duration // when each suspicion was recorded
	opSuspects  bitset.Set      // everyone silent during this acquisition (no decay)
	sawNoQuorum bool            // this acquisition once found no quorum among trusted nodes
	sawStale    bool            // this acquisition was rejected by a newer-epoch arbiter
	attempt     int
}

// Node implements cluster.Handler: every node is both an arbiter for its
// peers and (optionally) a requester driven by its workload.
type Node struct {
	id    cluster.NodeID
	cfg   Config
	clock uint64
	arb   arbiter
	req   requester

	// stats
	Entries   int
	Retries   int
	WaitTotal time.Duration
	waitStart time.Duration
}

var _ cluster.Handler = (*Node)(nil)

// NewNode builds a protocol node. Node IDs must be the quorum system's
// element indices 0..n-1.
func NewNode(id cluster.NodeID, cfg Config) (*Node, error) {
	if cfg.System == nil && cfg.Epochs == nil {
		return nil, fmt.Errorf("dmutex: config needs a quorum system or an epoch store")
	}
	universe := 0
	if cfg.Epochs != nil {
		universe = cfg.Epochs.Universe()
	} else {
		universe = cfg.System.Universe()
	}
	if int(id) < 0 || int(id) >= universe {
		return nil, fmt.Errorf("dmutex: node %d outside universe %d", id, universe)
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 500 * time.Millisecond
	}
	if cfg.MaxRetryTimeout <= 0 {
		cfg.MaxRetryTimeout = 8 * cfg.RetryTimeout
	}
	if cfg.SuspectTTL == 0 {
		cfg.SuspectTTL = 4 * cfg.RetryTimeout
	}
	if cfg.GranteeTimeout == 0 {
		cfg.GranteeTimeout = 8 * cfg.RetryTimeout
	}
	n := &Node{id: id, cfg: cfg}
	n.req.suspects = bitset.New(universe)
	n.req.opSuspects = bitset.New(universe)
	n.req.suspectAt = make([]time.Duration, universe)
	n.req.remaining = cfg.Workload.Count
	return n, nil
}

// universe is the node ID space (the epoch store's space when
// epoch-versioned, the quorum system's otherwise).
func (n *Node) universe() int {
	if n.cfg.Epochs != nil {
		return n.cfg.Epochs.Universe()
	}
	return n.cfg.System.Universe()
}

// pick draws a mutex quorum under the current configuration. While the
// epoch store holds a joint config this is the union of a quorum of the
// old construction and one of the new — the two-phase handoff rule that
// keeps mutual exclusion across a reconfiguration.
func (n *Node) pick(rng *rand.Rand, live bitset.Set) (bitset.Set, error) {
	if n.cfg.Epochs != nil {
		return n.cfg.Epochs.Pick(rng, live)
	}
	return n.cfg.System.Pick(rng, live)
}

// epochNow is the node's current configuration epoch (0 when not
// epoch-versioned).
func (n *Node) epochNow() uint64 {
	if n.cfg.Epochs == nil {
		return 0
	}
	return n.cfg.Epochs.Epoch()
}

// Start schedules the node's workload on the network.
func (n *Node) Start(net *cluster.Network) error {
	if n.cfg.Workload.Count == 0 {
		return nil
	}
	return net.StartTimer(n.id, 0, tokenStart{})
}

// Done reports whether the workload completed.
func (n *Node) Done() bool { return n.req.remaining == 0 && !n.req.active }

// Deliver implements cluster.Handler.
func (n *Node) Deliver(env cluster.Env, from cluster.NodeID, msg any) {
	switch m := msg.(type) {
	case msgRequest:
		n.bump(m.ID.TS)
		if n.cfg.Epochs != nil && m.Epoch < n.cfg.Epochs.Epoch() {
			// The requester picked its quorum under a superseded
			// configuration; its quorum may no longer intersect current
			// ones. Reject with our epoch so it re-picks once its (shared)
			// config store catches up — or fails with ErrStaleEpoch.
			env.Send(from, msgFailed{Epoch: n.epochNow(), ID: m.ID})
			return
		}
		n.arbRequest(env, from, m.ID, m.Epoch)
	case msgRelease:
		n.arbRelease(env, m.ID)
	case msgRelinquish:
		n.arbRelinquish(env, m.ID)
	case msgGrant:
		n.reqGrant(env, from, m.ID)
	case msgFailed:
		n.reqFailed(env, from, m.ID, m.Epoch)
	case msgInquire:
		n.reqInquire(env, from, m.ID)
	case msgBusy:
		n.arbBusy(env, m.ID, m.Epoch)
	default:
		panic(fmt.Sprintf("dmutex: unknown message %T", msg))
	}
}

// Timer implements cluster.Handler.
func (n *Node) Timer(env cluster.Env, token any) {
	switch tk := token.(type) {
	case tokenStart, tokenThink:
		n.beginRequest(env)
	case tokenHold:
		if n.req.inCS && n.req.id == tk.ID {
			n.exitCS(env)
		}
	case tokenRetry:
		if n.req.active && !n.req.inCS && n.req.id == tk.ID {
			n.retry(env)
		}
	case tokenProbe:
		n.arbProbe(env)
	default:
		panic(fmt.Sprintf("dmutex: unknown timer token %T", token))
	}
}

func (n *Node) bump(seen uint64) {
	if seen > n.clock {
		n.clock = seen
	}
}

// ---- Arbiter side ----

func (n *Node) arbRequest(env cluster.Env, from cluster.NodeID, id ReqID, ep uint64) {
	// A node has at most one outstanding request, so a request from the
	// same origin supersedes any older one — the origin abandoned it and
	// its RELEASE may have been lost. Conversely, a delayed *older*
	// request from an origin we already track is stale: drop it.
	if n.supersede(env, id) {
		return
	}
	if n.arb.grantedTo == nil {
		granted := id
		n.arb.grantedTo = &granted
		n.arb.grantEpoch = ep
		n.arb.lastHeard = env.Now()
		env.Send(id.Origin, msgGrant{Epoch: n.epochNow(), ID: id})
		return
	}
	if *n.arb.grantedTo == id {
		// Duplicate (retry after timeout); re-grant.
		if ep > n.arb.grantEpoch {
			n.arb.grantEpoch = ep
		}
		env.Send(id.Origin, msgGrant{Epoch: n.epochNow(), ID: id})
		return
	}
	n.enqueue(id)
	n.setReqEpoch(id, ep)
	if id.Less(*n.arb.grantedTo) {
		if !n.arb.inquired {
			n.arb.inquired = true
			env.Send(n.arb.grantedTo.Origin, msgInquire{Epoch: n.epochNow(), ID: *n.arb.grantedTo})
		}
	} else {
		env.Send(id.Origin, msgFailed{Epoch: n.epochNow(), ID: id})
	}
	n.armProbe(env)
	_ = from
}

// setReqEpoch records the epoch a queued request arrived under.
func (n *Node) setReqEpoch(id ReqID, ep uint64) {
	if n.arb.epochOf == nil {
		n.arb.epochOf = make(map[ReqID]uint64)
	}
	n.arb.epochOf[id] = ep
}

// armProbe schedules a periodic probe of the current grantee while
// requests wait. The probe re-sends INQUIRE, which a crashed-and-restarted
// or moved-on grantee answers with RELINQUISH — the recovery path when a
// RELEASE or RELINQUISH was lost in transit.
func (n *Node) armProbe(env cluster.Env) {
	if n.arb.probing {
		return
	}
	n.arb.probing = true
	env.After(n.cfg.RetryTimeout, tokenProbe{})
}

// arbProbe fires the periodic grantee probe. A grantee that has answered
// nothing — no RELINQUISH, RELEASE or busy keep-alive — for GranteeTimeout
// is presumed crashed and its grant is reclaimed, so a dead lock holder
// cannot wedge every quorum that intersects this arbiter.
func (n *Node) arbProbe(env cluster.Env) {
	n.arb.probing = false
	if n.arb.grantedTo == nil || len(n.arb.queue) == 0 {
		return
	}
	if n.cfg.GranteeTimeout > 0 && env.Now()-n.arb.lastHeard >= n.cfg.GranteeTimeout {
		n.grantNext(env)
	} else {
		// The INQUIRE doubles as epoch revalidation: a grantee that holds
		// the lock across a reconfiguration answers busy stamped with its
		// refreshed epoch, updating grantEpoch; one that never catches up
		// keeps its stale stamp and stays first in line for reclamation
		// scrutiny. Either way a waiting new-config request keeps the
		// probe loop alive until the old-config grant resolves.
		env.Send(n.arb.grantedTo.Origin, msgInquire{Epoch: n.epochNow(), ID: *n.arb.grantedTo})
	}
	if n.arb.grantedTo != nil && len(n.arb.queue) > 0 {
		n.armProbe(env)
	}
}

// arbBusy refreshes the grantee's liveness clock — and its epoch: a busy
// keep-alive stamped with a newer epoch proves the holder has adopted the
// new configuration, so the grant is no longer an old-config straggler.
func (n *Node) arbBusy(env cluster.Env, id ReqID, ep uint64) {
	if n.arb.grantedTo != nil && *n.arb.grantedTo == id {
		n.arb.lastHeard = env.Now()
		if ep > n.arb.grantEpoch {
			n.arb.grantEpoch = ep
		}
	}
}

// supersede reconciles arbiter state with a fresh request from an origin
// it already tracks. It returns true when the incoming request is stale
// and must be ignored.
func (n *Node) supersede(env cluster.Env, id ReqID) bool {
	for i := 0; i < len(n.arb.queue); i++ {
		q := n.arb.queue[i]
		if q.Origin != id.Origin || q == id {
			continue
		}
		if q.TS > id.TS {
			return true // a newer request is already queued
		}
		n.arb.queue = append(n.arb.queue[:i], n.arb.queue[i+1:]...)
		delete(n.arb.epochOf, q)
		i--
	}
	if g := n.arb.grantedTo; g != nil && g.Origin == id.Origin && *g != id {
		if g.TS > id.TS {
			return true // the grant already belongs to a newer request
		}
		// The granted request is obsolete: reclaim the grant before
		// processing the new request.
		n.grantNext(env)
	}
	return false
}

func (n *Node) enqueue(id ReqID) {
	for _, q := range n.arb.queue {
		if q == id {
			return
		}
	}
	n.arb.queue = append(n.arb.queue, id)
	for i := len(n.arb.queue) - 1; i > 0 && n.arb.queue[i].Less(n.arb.queue[i-1]); i-- {
		n.arb.queue[i], n.arb.queue[i-1] = n.arb.queue[i-1], n.arb.queue[i]
	}
}

func (n *Node) dequeue(id ReqID) {
	delete(n.arb.epochOf, id)
	for i, q := range n.arb.queue {
		if q == id {
			n.arb.queue = append(n.arb.queue[:i], n.arb.queue[i+1:]...)
			return
		}
	}
}

func (n *Node) arbRelease(env cluster.Env, id ReqID) {
	n.dequeue(id)
	if n.arb.grantedTo == nil || *n.arb.grantedTo != id {
		return
	}
	n.grantNext(env)
}

func (n *Node) arbRelinquish(env cluster.Env, id ReqID) {
	if n.arb.grantedTo == nil || *n.arb.grantedTo != id {
		return
	}
	// The relinquished request goes back to the queue and the best pending
	// request gets the grant.
	n.enqueue(id)
	n.setReqEpoch(id, n.arb.grantEpoch)
	n.grantNext(env)
}

func (n *Node) grantNext(env cluster.Env) {
	n.arb.inquired = false
	n.arb.grantedTo = nil
	n.arb.grantEpoch = 0
	if len(n.arb.queue) == 0 {
		return
	}
	next := n.arb.queue[0]
	n.arb.queue = n.arb.queue[1:]
	n.arb.grantedTo = &next
	n.arb.grantEpoch = n.arb.epochOf[next]
	delete(n.arb.epochOf, next)
	n.arb.lastHeard = env.Now()
	env.Send(next.Origin, msgGrant{Epoch: n.epochNow(), ID: next})
}

// ---- Requester side ----

func (n *Node) beginRequest(env cluster.Env) {
	if n.req.active || n.req.remaining == 0 {
		return
	}
	n.req.active = true
	n.req.attempt = 0
	n.req.sawNoQuorum = false
	n.req.sawStale = false
	n.req.opSuspects.Clear()
	n.waitStart = env.Now()
	n.issue(env)
}

// attemptTimeout returns the current attempt's patience: exponential
// backoff from RetryTimeout capped at MaxRetryTimeout, plus up to 50%
// jitter so colliding requesters desynchronize, clamped so the attempt
// never outlives the acquire deadline by more than one timer.
func (n *Node) attemptTimeout(env cluster.Env) time.Duration {
	shift := n.req.attempt
	if shift > 16 {
		shift = 16
	}
	d := n.cfg.RetryTimeout << uint(shift)
	if d <= 0 || d > n.cfg.MaxRetryTimeout {
		d = n.cfg.MaxRetryTimeout
	}
	d += time.Duration(env.Rand().Int63n(int64(d)/2 + 1))
	if n.cfg.AcquireDeadline > 0 {
		if remaining := n.waitStart + n.cfg.AcquireDeadline - env.Now(); remaining < d {
			d = remaining
		}
		if d < 0 {
			d = 0
		}
	}
	return d
}

// decaySuspects ages out suspicions older than SuspectTTL, letting
// crashed-then-restarted arbiters rejoin quorum picks.
func (n *Node) decaySuspects(env cluster.Env) {
	if n.cfg.SuspectTTL < 0 {
		return
	}
	now := env.Now()
	n.req.suspects.ForEach(func(m int) {
		if now-n.req.suspectAt[m] >= n.cfg.SuspectTTL {
			n.req.suspects.Remove(m)
		}
	})
}

// issue picks a quorum among non-suspect nodes and requests every member.
func (n *Node) issue(env cluster.Env) {
	n.clock++
	n.req.id = ReqID{TS: n.clock, Origin: n.id}
	n.req.failed = false
	n.req.deferred = nil
	n.req.grants = bitset.New(n.universe())
	n.req.owed = bitset.New(n.universe())
	n.req.responded = bitset.New(n.universe())

	n.decaySuspects(env)
	live := n.req.suspects.Complement()
	q, err := n.pick(env.Rand(), live)
	if err != nil {
		// No quorum among unsuspected nodes: clear suspicions and retry
		// from scratch (suspects may have recovered).
		n.req.sawNoQuorum = true
		n.req.suspects.Clear()
		q, err = n.pick(env.Rand(), bitset.Universe(n.universe()))
		if err != nil {
			panic("dmutex: full universe has no quorum")
		}
	}
	ep := n.epochNow()
	n.req.quorum = q
	q.ForEach(func(member int) {
		env.Send(cluster.NodeID(member), msgRequest{Epoch: ep, ID: n.req.id})
	})
	env.After(n.attemptTimeout(env), tokenRetry{ID: n.req.id})
}

// retry abandons the current attempt: releases all members, suspects the
// silent ones and re-issues; past the acquire deadline it abandons the
// acquisition with a typed error instead.
func (n *Node) retry(env cluster.Env) {
	n.Retries++
	// Back off only when the whole quorum went silent — we are cut off or
	// it is dead, and hammering it is pointless. If anyone answered, the
	// attempt failed to contention or message loss, and the recovery path
	// is releasing and re-picking quickly, not waiting: backing off under
	// contention makes requesters sit on partial grants, stalling everyone.
	if n.req.responded.Empty() {
		n.req.attempt++
	} else {
		n.req.attempt = 0
	}
	now := env.Now()
	ep := n.epochNow()
	n.req.quorum.ForEach(func(member int) {
		env.Send(cluster.NodeID(member), msgRelease{Epoch: ep, ID: n.req.id})
		if !n.req.responded.Contains(member) {
			// A member that sent nothing at all within the timeout is
			// suspected crashed; contended members answer with GRANT,
			// FAILED or INQUIRE and stay trusted.
			n.req.suspects.Add(member)
			n.req.opSuspects.Add(member)
			n.req.suspectAt[member] = now
		}
	})
	if n.cfg.AcquireDeadline > 0 && now-n.waitStart >= n.cfg.AcquireDeadline {
		n.failAcquire(env)
		return
	}
	n.issue(env)
}

// failAcquire abandons the acquisition at its deadline (the quorum was
// already released by retry). ErrStaleEpoch when the acquisition was
// rejected by a newer-epoch arbiter and this node's config store never
// caught up; otherwise ErrNoQuorum when every quorum contained a node
// that went silent during the acquisition — judged on the cumulative
// per-acquisition view, since decay and the fallback path shrink the
// instantaneous suspect set — ErrDegraded when neither. The workload
// moves on so Done() still completes.
func (n *Node) failAcquire(env cluster.Env) {
	err := quorum.ErrDegraded
	if n.req.sawStale {
		err = epoch.ErrStaleEpoch
	} else if n.req.sawNoQuorum {
		err = quorum.ErrNoQuorum
	} else if _, e := n.pick(env.Rand(), n.req.opSuspects.Complement()); e != nil {
		err = quorum.ErrNoQuorum
	}
	n.req.active = false
	n.req.remaining--
	if n.cfg.OnFail != nil {
		n.cfg.OnFail(n.id, env.Now(), err)
	}
	if n.req.remaining > 0 {
		env.After(n.cfg.Workload.Think, tokenThink{})
	}
}

func (n *Node) reqGrant(env cluster.Env, from cluster.NodeID, id ReqID) {
	if !n.req.active || n.req.inCS || id != n.req.id {
		// Stale grant from an abandoned attempt: release it.
		if id.Origin == n.id && (!n.req.active || id != n.req.id) {
			env.Send(from, msgRelease{Epoch: n.epochNow(), ID: id})
		}
		return
	}
	n.markResponded(from)
	if n.req.owed.Contains(int(from)) {
		// A GRANT that crossed with our RELINQUISH on a reordered link:
		// we already handed it back, so it must not be counted. (With
		// FIFO links this never triggers.)
		n.req.owed.Remove(int(from))
		return
	}
	n.req.grants.Add(int(from))
	if n.haveAllGrants() {
		n.enterCS(env)
	}
}

func (n *Node) haveAllGrants() bool {
	return n.req.quorum.SubsetOf(n.req.grants)
}

// markResponded records any reply from a quorum member of the current
// attempt (the basis of crash suspicion).
func (n *Node) markResponded(from cluster.NodeID) {
	if n.req.responded.Cap() > 0 {
		n.req.responded.Add(int(from))
	}
}

func (n *Node) reqFailed(env cluster.Env, from cluster.NodeID, id ReqID, ep uint64) {
	if !n.req.active || n.req.inCS || id != n.req.id {
		return
	}
	if n.cfg.Epochs != nil && ep > n.cfg.Epochs.Epoch() {
		// An arbiter ahead of us rejected the request: our quorum was
		// picked under a superseded config. Remember it so the deadline
		// reports ErrStaleEpoch — retries re-pick through the shared
		// store, which the co-located rkv node is catching up.
		n.req.sawStale = true
	}
	n.markResponded(from)
	n.req.failed = true
	// Answer deferred inquiries: hand those grants back. An arbiter whose
	// GRANT has not arrived yet (reordered link) is marked owed so the
	// late grant is discarded on arrival.
	for _, a := range n.req.deferred {
		if !n.req.grants.Contains(int(a)) {
			n.req.owed.Add(int(a))
		}
		n.req.grants.Remove(int(a))
		env.Send(a, msgRelinquish{Epoch: n.epochNow(), ID: n.req.id})
	}
	n.req.deferred = nil
	_ = from
}

func (n *Node) reqInquire(env cluster.Env, from cluster.NodeID, id ReqID) {
	if n.req.active && id == n.req.id {
		n.markResponded(from)
	}
	if id.Origin == n.id && (!n.req.active || id != n.req.id) {
		// An INQUIRE for a request we abandoned (our RELEASE was lost):
		// hand the grant back so the arbiter is not stuck forever.
		env.Send(from, msgRelinquish{Epoch: n.epochNow(), ID: id})
		return
	}
	if !n.req.active || id != n.req.id || n.req.inCS {
		// In the CS: the arbiter will get our RELEASE when we leave. Answer
		// busy so a reclaiming arbiter does not mistake us for crashed.
		if n.req.inCS && n.req.active && id == n.req.id {
			env.Send(from, msgBusy{Epoch: n.epochNow(), ID: id})
		}
		return
	}
	if n.req.failed {
		if !n.req.grants.Contains(int(from)) {
			n.req.owed.Add(int(from))
		}
		n.req.grants.Remove(int(from))
		env.Send(from, msgRelinquish{Epoch: n.epochNow(), ID: n.req.id})
		return
	}
	// Still winning: keep the grant, but tell the arbiter we are alive
	// (repeated probes must keep hearing busy, even once deferred).
	env.Send(from, msgBusy{Epoch: n.epochNow(), ID: id})
	for _, a := range n.req.deferred {
		if a == from {
			return
		}
	}
	n.req.deferred = append(n.req.deferred, from)
}

func (n *Node) enterCS(env cluster.Env) {
	n.req.inCS = true
	n.req.deferred = nil
	n.Entries++
	n.WaitTotal += env.Now() - n.waitStart
	if n.cfg.OnAcquire != nil {
		n.cfg.OnAcquire(n.id, env.Now())
	}
	env.After(n.cfg.Workload.Hold, tokenHold{ID: n.req.id})
}

func (n *Node) exitCS(env cluster.Env) {
	ep := n.epochNow()
	n.req.quorum.ForEach(func(member int) {
		env.Send(cluster.NodeID(member), msgRelease{Epoch: ep, ID: n.req.id})
	})
	if n.cfg.OnRelease != nil {
		n.cfg.OnRelease(n.id, env.Now())
	}
	n.req.inCS = false
	n.req.active = false
	n.req.remaining--
	if n.req.remaining > 0 {
		env.After(n.cfg.Workload.Think, tokenThink{})
	}
}

// Restarted implements the cluster.Network restart hook: the crash killed
// the node's timers, so an in-flight acquisition is abandoned (arbiters
// holding its grants recover through INQUIRE → RELINQUISH, or reclamation)
// and the workload resumes with the next critical section. Arbiter grant
// state survives, but its probe timer died with the crash — re-arm it so
// waiting requests are not stranded.
func (n *Node) Restarted(env cluster.Env) {
	if n.req.active {
		n.req.active = false
		n.req.inCS = false
		n.req.remaining--
	}
	if n.req.remaining > 0 {
		env.After(n.cfg.Workload.Think, tokenThink{})
	}
	n.arb.probing = false
	if n.arb.grantedTo != nil && len(n.arb.queue) > 0 {
		n.armProbe(env)
	}
}

// RegisterWire registers the protocol's wire messages with a gob-based
// transport (e.g. transport.Register).
func RegisterWire(register func(values ...any)) {
	register(msgRequest{}, msgGrant{}, msgFailed{}, msgInquire{}, msgRelinquish{}, msgRelease{}, msgBusy{})
}

// StartToken returns the timer token that kicks off the node's workload —
// for transports without a cluster.Network (see Node.Start).
func (n *Node) StartToken() any { return tokenStart{} }
