package dmutex

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/cwlog"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/majority"
	"hquorum/internal/quorum"
)

// guard asserts mutual exclusion and records entries.
type guard struct {
	t       *testing.T
	holder  cluster.NodeID
	holding bool
	entries []cluster.NodeID
}

func (g *guard) acquire(id cluster.NodeID, at time.Duration) {
	if g.holding {
		g.t.Fatalf("MUTUAL EXCLUSION VIOLATED at %v: node %d entered while node %d holds", at, id, g.holder)
	}
	g.holding = true
	g.holder = id
	g.entries = append(g.entries, id)
}

func (g *guard) release(id cluster.NodeID, at time.Duration) {
	if !g.holding || g.holder != id {
		g.t.Fatalf("release by non-holder %d at %v", id, at)
	}
	g.holding = false
}

// scenario wires a full cluster where every node requests the critical
// section count times.
type scenario struct {
	net   *cluster.Network
	nodes []*Node
	g     *guard
}

func newScenario(t *testing.T, sys quorum.System, seed int64, count int, crash []cluster.NodeID) *scenario {
	t.Helper()
	net := cluster.New(cluster.WithSeed(seed), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	g := &guard{t: t}
	crashed := map[cluster.NodeID]bool{}
	for _, id := range crash {
		crashed[id] = true
	}
	var nodes []*Node
	for i := 0; i < sys.Universe(); i++ {
		id := cluster.NodeID(i)
		wl := Workload{Count: count, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond}
		if crashed[id] {
			wl = Workload{}
		}
		n, err := NewNode(id, Config{
			System:       sys,
			RetryTimeout: 400 * time.Millisecond,
			Workload:     wl,
			OnAcquire:    g.acquire,
			OnRelease:    g.release,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(id, n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range crash {
		net.Crash(id)
	}
	return &scenario{net: net, nodes: nodes, g: g}
}

func (s *scenario) run(t *testing.T, until time.Duration) {
	t.Helper()
	s.net.Run(until)
	for _, n := range s.nodes {
		if !n.Done() {
			t.Fatalf("node %d did not finish (entries %d, retries %d)", n.id, n.Entries, n.Retries)
		}
	}
}

func TestMutualExclusionAcrossSystems(t *testing.T) {
	systems := []quorum.System{
		htriang.New(5),
		htgrid.Auto(4, 4),
		hgrid.NewRW(hgrid.Auto(3, 3)),
		majority.New(9),
		mustCW(14),
	}
	for _, sys := range systems {
		t.Run(sys.Name(), func(t *testing.T) {
			s := newScenario(t, sys, 11, 3, nil)
			s.run(t, 60*time.Second)
			want := 3 * sys.Universe()
			if len(s.g.entries) != want {
				t.Fatalf("total entries %d, want %d", len(s.g.entries), want)
			}
		})
	}
}

func mustCW(n int) quorum.System {
	s, err := cwlog.Log(n)
	if err != nil {
		panic(err)
	}
	return s
}

func TestManySeeds(t *testing.T) {
	sys := htriang.New(4)
	for seed := int64(1); seed <= 8; seed++ {
		s := newScenario(t, sys, seed, 2, nil)
		s.run(t, 60*time.Second)
	}
}

func TestCrashTolerance(t *testing.T) {
	// h-triang(5): crash three processes; plenty of quorums avoid them.
	sys := htriang.New(5)
	crash := []cluster.NodeID{0, 7, 12}
	s := newScenario(t, sys, 5, 2, crash)
	s.net.Run(120 * time.Second)
	finished := 0
	for _, n := range s.nodes {
		if n.cfg.Workload.Count > 0 && n.Done() {
			finished++
		}
	}
	if finished != 12 {
		t.Fatalf("finished %d of 12 live nodes", finished)
	}
}

func TestRetriesRecoverFromCrashedArbiters(t *testing.T) {
	// Crash nodes and verify requesters suspected them (retries happened)
	// but still completed.
	sys := htgrid.Auto(3, 3)
	crash := []cluster.NodeID{4}
	s := newScenario(t, sys, 3, 2, crash)
	s.net.Run(120 * time.Second)
	retries := 0
	for _, n := range s.nodes {
		retries += n.Retries
		if n.cfg.Workload.Count > 0 && !n.Done() {
			t.Fatalf("node %d stuck", n.id)
		}
	}
	if retries == 0 {
		t.Log("no retries needed (quorums avoided the crashed arbiter)")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []cluster.NodeID {
		s := newScenario(t, htriang.New(4), 99, 2, nil)
		s.run(t, 60*time.Second)
		return s.g.entries
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMessageEfficiency(t *testing.T) {
	// Maekawa-style locking needs a small constant times the quorum size
	// per entry: 3|Q| in the contention-free case, more under contention.
	sys := htriang.New(5)
	s := newScenario(t, sys, 17, 2, nil)
	s.run(t, 60*time.Second)
	entries := len(s.g.entries)
	perEntry := float64(s.net.Messages()) / float64(entries)
	minExpected := 3.0 * float64(sys.MinQuorumSize())
	if perEntry < minExpected-0.5 {
		t.Fatalf("messages per entry %.1f below protocol minimum %.1f", perEntry, minExpected)
	}
	if perEntry > 12*float64(sys.MaxQuorumSize()) {
		t.Fatalf("messages per entry %.1f implausibly high", perEntry)
	}
	t.Logf("entries=%d messages=%d per-entry=%.1f", entries, s.net.Messages(), perEntry)
}

func TestWaitTimesRecorded(t *testing.T) {
	s := newScenario(t, majority.New(5), 1, 2, nil)
	s.run(t, 60*time.Second)
	for _, n := range s.nodes {
		if n.Entries > 0 && n.WaitTotal <= 0 {
			t.Fatalf("node %d recorded no waiting time", n.id)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNode(0, Config{}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewNode(100, Config{System: majority.New(5)}); err == nil {
		t.Error("out-of-universe node accepted")
	}
}

func TestHighContention(t *testing.T) {
	// Zero think time maximizes contention; safety must hold and all
	// workloads complete.
	net := cluster.New(cluster.WithSeed(23), cluster.WithLatency(time.Millisecond, 4*time.Millisecond))
	g := &guard{t: t}
	sys := htgrid.Auto(3, 3)
	var nodes []*Node
	for i := 0; i < 9; i++ {
		n, err := NewNode(cluster.NodeID(i), Config{
			System:       sys,
			RetryTimeout: time.Second,
			Workload:     Workload{Count: 5, Hold: time.Millisecond, Think: 0},
			OnAcquire:    g.acquire,
			OnRelease:    g.release,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(5 * time.Minute)
	for _, n := range nodes {
		if !n.Done() {
			t.Fatalf("node %d stuck under contention (entries %d)", n.id, n.Entries)
		}
	}
	if len(g.entries) != 45 {
		t.Fatalf("entries %d, want 45", len(g.entries))
	}
	_ = fmt.Sprintf
}

// TestReorderedLinks exercises the owed-relinquish hardening: with FIFO
// links disabled, GRANT/INQUIRE messages can cross, and safety must still
// hold.
func TestReorderedLinks(t *testing.T) {
	for seed := int64(90); seed < 110; seed++ {
		net := cluster.New(cluster.WithSeed(seed), cluster.WithFIFO(false),
			cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
		g := &guard{t: t}
		sys := htriang.New(4)
		var nodes []*Node
		for i := 0; i < 10; i++ {
			n, err := NewNode(cluster.NodeID(i), Config{
				System:       sys,
				RetryTimeout: 400 * time.Millisecond,
				Workload:     Workload{Count: 2, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond},
				OnAcquire:    g.acquire,
				OnRelease:    g.release,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.AddNode(cluster.NodeID(i), n); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
			if err := n.Start(net); err != nil {
				t.Fatal(err)
			}
		}
		net.Run(2 * time.Minute)
		for _, n := range nodes {
			if !n.Done() {
				t.Fatalf("seed %d: node %d stuck", seed, n.id)
			}
		}
	}
}

// TestMessageLossRecovery pins the loss-recovery machinery (request
// supersession, stale-INQUIRE relinquish, arbiter probes) under
// deterministic 15% message loss: every workload must still complete and
// safety must hold.
func TestMessageLossRecovery(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net := cluster.New(cluster.WithSeed(seed), cluster.WithDropRate(0.15),
			cluster.WithLatency(time.Millisecond, 6*time.Millisecond))
		g := &guard{t: t}
		sys := htriang.New(4)
		var nodes []*Node
		for i := 0; i < 10; i++ {
			n, err := NewNode(cluster.NodeID(i), Config{
				System:       sys,
				RetryTimeout: 100 * time.Millisecond,
				Workload:     Workload{Count: 2, Hold: 2 * time.Millisecond, Think: 3 * time.Millisecond},
				OnAcquire:    g.acquire,
				OnRelease:    g.release,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.AddNode(cluster.NodeID(i), n); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, n)
			if err := n.Start(net); err != nil {
				t.Fatal(err)
			}
		}
		net.Run(5 * time.Minute)
		for _, n := range nodes {
			if !n.Done() {
				t.Fatalf("seed %d: node %d stuck under message loss (entries %d, retries %d)",
					seed, n.id, n.Entries, n.Retries)
			}
		}
		if len(g.entries) != 20 {
			t.Fatalf("seed %d: entries %d, want 20", seed, len(g.entries))
		}
	}
}

// TestCrashedHolderDoesNotWedgeCluster: a node that crashes inside the
// critical section never sends RELEASE, and every quorum intersects the
// quorum it holds — without grant reclamation the whole cluster deadlocks.
// Arbiters must reclaim the dead grantee's grant after GranteeTimeout of
// probe silence so everyone else still finishes.
func TestCrashedHolderDoesNotWedgeCluster(t *testing.T) {
	sys := htgrid.Auto(3, 3)
	net := cluster.New(cluster.WithSeed(33), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	g := &guard{t: t}
	const victim = cluster.NodeID(2)
	crashed := false
	var nodes []*Node
	for i := 0; i < sys.Universe(); i++ {
		id := cluster.NodeID(i)
		n, err := NewNode(id, Config{
			System:       sys,
			RetryTimeout: 100 * time.Millisecond,
			Workload:     Workload{Count: 2, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond},
			OnAcquire: func(id cluster.NodeID, at time.Duration) {
				g.acquire(id, at)
				if id == victim && !crashed {
					crashed = true
					net.Crash(victim)
					g.holding = false // a dead holder excludes nobody
				}
			},
			OnRelease: g.release,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(id, n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(2 * time.Minute)
	if !crashed {
		t.Fatal("victim never reached the critical section; pick another seed")
	}
	for _, n := range nodes {
		if n.id != victim && !n.Done() {
			t.Fatalf("node %d wedged by the crashed holder (entries %d, retries %d)",
				n.id, n.Entries, n.Retries)
		}
	}
}

// TestRestartedHolderResumesWorkload: a holder that crashes and restarts
// abandons the interrupted critical section (the history layer counts it
// as truncated) and completes the rest of its workload.
func TestRestartedHolderResumesWorkload(t *testing.T) {
	sys := htgrid.Auto(3, 3)
	net := cluster.New(cluster.WithSeed(7), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	g := &guard{t: t}
	const victim = cluster.NodeID(4)
	crashed := false
	var nodes []*Node
	for i := 0; i < sys.Universe(); i++ {
		id := cluster.NodeID(i)
		n, err := NewNode(id, Config{
			System:       sys,
			RetryTimeout: 100 * time.Millisecond,
			Workload:     Workload{Count: 3, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond},
			OnAcquire: func(id cluster.NodeID, at time.Duration) {
				g.acquire(id, at)
				if id == victim && !crashed {
					crashed = true
					net.Crash(victim)
					g.holding = false
				}
			},
			OnRelease: g.release,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(id, n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(30 * time.Second)
	if !crashed {
		t.Fatal("victim never reached the critical section; pick another seed")
	}
	net.Restart(victim)
	net.Run(net.Now() + 2*time.Minute)
	for _, n := range nodes {
		if !n.Done() {
			t.Fatalf("node %d did not finish after restart (entries %d)", n.id, n.Entries)
		}
	}
	// The victim's interrupted acquisition is abandoned, not redone: it
	// entered once before the crash and twice after.
	if nodes[victim].Entries != 3 {
		t.Fatalf("victim entries %d, want 3", nodes[victim].Entries)
	}
}

// TestAcquireDeadlineFailsTyped: an isolated requester gives up at its
// AcquireDeadline with quorum.ErrNoQuorum (every quorum needs unreachable
// members), keeps going with the rest of its workload, and still counts as
// Done.
func TestAcquireDeadlineFailsTyped(t *testing.T) {
	sys := htgrid.Auto(3, 3)
	net := cluster.New(cluster.WithSeed(19), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	const deadline = 3 * time.Second
	var fails []error
	var failAt []time.Duration
	n, err := NewNode(0, Config{
		System:          sys,
		RetryTimeout:    100 * time.Millisecond,
		AcquireDeadline: deadline,
		Workload:        Workload{Count: 2, Hold: 2 * time.Millisecond, Think: 5 * time.Millisecond},
		OnAcquire:       func(cluster.NodeID, time.Duration) { t.Fatal("acquired across a partition") },
		OnFail: func(_ cluster.NodeID, at time.Duration, err error) {
			fails = append(fails, err)
			failAt = append(failAt, at)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(0, n); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < sys.Universe(); i++ {
		arb, err := NewNode(cluster.NodeID(i), Config{System: sys})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(cluster.NodeID(i), arb); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Start(net); err != nil {
		t.Fatal(err)
	}
	if err := net.Partition([]cluster.NodeID{0}, []cluster.NodeID{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	net.Run(time.Minute)
	if len(fails) != 2 {
		t.Fatalf("OnFail called %d times, want 2", len(fails))
	}
	for i, err := range fails {
		if !errors.Is(err, quorum.ErrNoQuorum) {
			t.Fatalf("failure %d: %v, want ErrNoQuorum", i, err)
		}
	}
	if !n.Done() {
		t.Fatal("workload not Done after deadline failures")
	}
	if took := failAt[0]; took > deadline+10*time.Millisecond {
		t.Fatalf("first failure at %v, deadline %v", took, deadline)
	}
}
