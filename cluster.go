package hquorum

import (
	"hquorum/internal/cluster"
	"hquorum/internal/dmutex"
	"hquorum/internal/epoch"
	"hquorum/internal/rkv"
)

// Simulation substrate (see internal/cluster).
type (
	// Network is the deterministic discrete-event cluster simulation.
	Network = cluster.Network
	// NodeID identifies a simulated node.
	NodeID = cluster.NodeID
	// Env is the node-side interface to the cluster.
	Env = cluster.Env
	// Handler is the protocol logic a node runs.
	Handler = cluster.Handler
	// NetworkOption configures a Network.
	NetworkOption = cluster.Option
)

// Network construction options.
var (
	// WithSeed sets the simulation's random seed.
	WithSeed = cluster.WithSeed
	// WithLatency sets the message-delay range.
	WithLatency = cluster.WithLatency
	// WithDropRate sets the message-loss probability.
	WithDropRate = cluster.WithDropRate
	// WithFIFO toggles per-link FIFO ordering.
	WithFIFO = cluster.WithFIFO
)

// NewNetwork creates a simulated cluster.
func NewNetwork(opts ...NetworkOption) *Network { return cluster.New(opts...) }

// Distributed mutual exclusion (see internal/dmutex).
type (
	// MutexNode is a Maekawa-style mutual-exclusion participant.
	MutexNode = dmutex.Node
	// MutexConfig parameterizes a MutexNode.
	MutexConfig = dmutex.Config
	// MutexWorkload schedules a node's critical-section attempts.
	MutexWorkload = dmutex.Workload
)

// NewMutexNode builds a mutual-exclusion node over any quorum System.
func NewMutexNode(id NodeID, cfg MutexConfig) (*MutexNode, error) {
	return dmutex.NewNode(id, cfg)
}

// Replicated register (see internal/rkv).
type (
	// Replica is a replicated-register node.
	Replica = rkv.Node
	// ReplicaConfig parameterizes a Replica.
	ReplicaConfig = rkv.Config
	// RegisterOp is one client operation on the register.
	RegisterOp = rkv.Op
	// RegisterResult reports a completed operation.
	RegisterResult = rkv.Result
	// HGridStore supplies h-grid read/write quorums to replicas.
	HGridStore = rkv.HGridStore
)

// Register operation kinds.
const (
	OpRead       = rkv.OpRead
	OpWrite      = rkv.OpWrite
	OpBlindWrite = rkv.OpBlindWrite
)

// NewReplica builds a replicated-register node.
func NewReplica(id NodeID, cfg ReplicaConfig) (*Replica, error) {
	return rkv.NewNode(id, cfg)
}

// Epoch-versioned cluster configuration (see internal/epoch). The root
// package only delegates: internal/epoch is the single source of truth
// for config values, validation, wire encoding and quorum construction.
type (
	// ClusterParams is one configuration a cluster can run: a quorum
	// flavor, its shape, and the member set as global node IDs.
	ClusterParams = epoch.Params
	// ClusterConfig is an epoch-versioned configuration; during a
	// reconfiguration it is "joint" and quorums span old and new.
	ClusterConfig = epoch.Config
	// EpochStore is a node's home for the current ClusterConfig.
	EpochStore = epoch.Store
	// QuorumFlavor names a construction the live protocols can run.
	QuorumFlavor = epoch.Flavor
)

// The live-path quorum flavors.
const (
	FlavorMajority = epoch.FlavorMajority
	FlavorHGrid    = epoch.FlavorHGrid
	FlavorHTGrid   = epoch.FlavorHTGrid
	FlavorHTriang  = epoch.FlavorHTriang
	FlavorHMaj     = epoch.FlavorHMaj
)

// ErrStaleEpoch reports an operation rejected for being issued under an
// older configuration epoch than the receiver's.
var ErrStaleEpoch = epoch.ErrStaleEpoch

// Config helpers, delegated to internal/epoch.
var (
	// ParseFlavor parses a flavor name (majority|hgrid|htgrid|htriang).
	ParseFlavor = epoch.ParseFlavor
	// ParseMembers parses a member spec like "0-8" or "0-3,6,9-11".
	ParseMembers = epoch.ParseMembers
	// MemberRange returns the member list [lo, hi).
	MemberRange = epoch.MemberRange
)

// NewEpochStore builds a node's epoch store over a global ID space,
// starting from the initial configuration at epoch 1. Pass it to a
// ReplicaConfig (Epochs field) or MutexConfig to make the node
// epoch-versioned.
func NewEpochStore(space int, initial ClusterParams) (*EpochStore, error) {
	return epoch.NewStore(space, initial)
}

// ReconfigToken returns the timer token that makes the receiving replica
// coordinate a live reconfiguration to target.
func ReconfigToken(target ClusterParams) any { return rkv.ReconfigToken(target) }
