package hquorum

import (
	"hquorum/internal/cluster"
	"hquorum/internal/dmutex"
	"hquorum/internal/rkv"
)

// Simulation substrate (see internal/cluster).
type (
	// Network is the deterministic discrete-event cluster simulation.
	Network = cluster.Network
	// NodeID identifies a simulated node.
	NodeID = cluster.NodeID
	// Env is the node-side interface to the cluster.
	Env = cluster.Env
	// Handler is the protocol logic a node runs.
	Handler = cluster.Handler
	// NetworkOption configures a Network.
	NetworkOption = cluster.Option
)

// Network construction options.
var (
	// WithSeed sets the simulation's random seed.
	WithSeed = cluster.WithSeed
	// WithLatency sets the message-delay range.
	WithLatency = cluster.WithLatency
	// WithDropRate sets the message-loss probability.
	WithDropRate = cluster.WithDropRate
	// WithFIFO toggles per-link FIFO ordering.
	WithFIFO = cluster.WithFIFO
)

// NewNetwork creates a simulated cluster.
func NewNetwork(opts ...NetworkOption) *Network { return cluster.New(opts...) }

// Distributed mutual exclusion (see internal/dmutex).
type (
	// MutexNode is a Maekawa-style mutual-exclusion participant.
	MutexNode = dmutex.Node
	// MutexConfig parameterizes a MutexNode.
	MutexConfig = dmutex.Config
	// MutexWorkload schedules a node's critical-section attempts.
	MutexWorkload = dmutex.Workload
)

// NewMutexNode builds a mutual-exclusion node over any quorum System.
func NewMutexNode(id NodeID, cfg MutexConfig) (*MutexNode, error) {
	return dmutex.NewNode(id, cfg)
}

// Replicated register (see internal/rkv).
type (
	// Replica is a replicated-register node.
	Replica = rkv.Node
	// ReplicaConfig parameterizes a Replica.
	ReplicaConfig = rkv.Config
	// RegisterOp is one client operation on the register.
	RegisterOp = rkv.Op
	// RegisterResult reports a completed operation.
	RegisterResult = rkv.Result
	// HGridStore supplies h-grid read/write quorums to replicas.
	HGridStore = rkv.HGridStore
)

// Register operation kinds.
const (
	OpRead       = rkv.OpRead
	OpWrite      = rkv.OpWrite
	OpBlindWrite = rkv.OpBlindWrite
)

// NewReplica builds a replicated-register node.
func NewReplica(id NodeID, cfg ReplicaConfig) (*Replica, error) {
	return rkv.NewNode(id, cfg)
}
