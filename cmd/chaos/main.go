// Command chaos sweeps the quorum protocols across seeded fault
// schedules and checks every recorded history against its correctness
// condition: linearizability for the replicated register, mutual
// exclusion for the distributed lock.
//
// The sweep is deterministic — same flags, same summary, byte for byte —
// so its output is a diffable regression artifact (scripts/chaos.sh runs
// it twice and diffs). The exit status is 1 if any run violated safety,
// 2 on usage errors, 0 otherwise; undecided linearizability searches
// (state budget exceeded) are reported but do not fail the sweep.
//
// Usage:
//
//	chaos -seeds 200
//	chaos -seeds 50 -ops 8 -count 3 -seed-base 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/lease"
	"hquorum/internal/nemesis"
	"hquorum/internal/rkv"
	"hquorum/internal/tuner"
)

func main() {
	seeds := flag.Int("seeds", 200, "seeds per (case, schedule) cell")
	seedBase := flag.Int64("seed-base", 1, "first seed of the sweep")
	ops := flag.Int("ops", 6, "register operations per node (writes alternating with reads)")
	count := flag.Int("count", 2, "lock critical sections per node")
	stateLimit := flag.Int("state-limit", 0, "linearizability search budget (0 = default)")
	flag.Parse()
	if *seeds <= 0 {
		fmt.Fprintln(os.Stderr, "chaos: -seeds must be positive")
		os.Exit(2)
	}

	h44 := hgrid.Auto(4, 4)
	maj5, err := rkv.NewMajorityStore(5, 3, 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	gridSchedules := append(nemesis.DefaultSchedules(16), nemesis.ColumnCut(4, 4))
	// Reconfiguration cells: epoch-versioned clusters whose schedules kick
	// a live config change mid-workload. Every run must settle at epoch 3
	// (stable → joint → stable) with a linearizable history across the
	// boundary, or the sweep counts a violation.
	initGrid := epoch.Params{Flavor: epoch.FlavorHGrid, Rows: 4, Cols: 4, Members: epoch.MemberRange(0, 16)}
	initMaj := epoch.Params{Flavor: epoch.FlavorMajority, Members: epoch.MemberRange(0, 9)}
	toHTGrid := epoch.Params{Flavor: epoch.FlavorHTGrid, Rows: 4, Cols: 4, Members: epoch.MemberRange(0, 16)}
	toGrid := initGrid
	rkvCases := []nemesis.RKVCase{
		{Name: "h-grid-4x4", Store: rkv.HGridStore{H: h44}, Schedules: gridSchedules},
		{Name: "h-T-grid-4x4", Store: rkv.HTGridStore{Sys: htgrid.New(h44)}, Schedules: gridSchedules},
		// Pipelined cell: each node keeps up to 4 operations in flight, so
		// the checker exercises concurrent ops from one node under faults.
		{Name: "h-grid-4x4/w4", Store: rkv.HGridStore{H: h44}, Window: 4, Schedules: gridSchedules},
		// Multi-key batched cell: the workload spans 8 keys with 4 ops
		// coalesced per quorum round; linearizability is checked per key.
		{Name: "h-grid-4x4/k8b4", Store: rkv.HGridStore{H: h44}, Window: 2, Batch: 4, Keys: 8, Schedules: gridSchedules},
		// Flavor swap under crashes: h-grid → h-T-grid on fixed membership
		// while two nodes are dark around the transition.
		{Name: "rc/h44-hT44", Initial: &initGrid, Space: 16, WantEpoch: 3,
			Schedules: []nemesis.Schedule{
				nemesis.ReconfigQuiet(0, toHTGrid),
				nemesis.ReconfigMidCrash(0, toHTGrid, []cluster.NodeID{5, 6}),
			}},
		// Growth under crashes: majority-9 → h-grid over all 16 nodes with
		// an incoming member down for the transition window.
		{Name: "rc/maj9-h44", Initial: &initMaj, Space: 16, WantEpoch: 3,
			Schedules: []nemesis.Schedule{
				nemesis.ReconfigMidCrash(0, toGrid, []cluster.NodeID{12}),
			}},
		// Durable cells: every node runs the disk backend, so a restarted
		// node replays its WAL instead of coming back empty — the combined
		// history must still be linearizable per key.
		{Name: "h-grid-4x4/disk", Store: rkv.HGridStore{H: h44}, Disk: true, Shards: 4,
			Schedules: []nemesis.Schedule{nemesis.CrashStorm(16), nemesis.Churn(16)}},
		{Name: "majority-5/disk", Store: maj5, Disk: true, Shards: 4,
			Schedules: []nemesis.Schedule{nemesis.RollingRestart(5)}},
		// Reconfiguration with disk recovery: the crashed nodes rejoin the
		// new epoch from their replayed logs.
		{Name: "rc/h44-hT44/disk", Initial: &initGrid, Space: 16, WantEpoch: 3,
			Disk: true, Shards: 4,
			Schedules: []nemesis.Schedule{
				nemesis.ReconfigMidCrash(0, toHTGrid, []cluster.NodeID{5, 6}),
			}},
		// Auto-tune under fire: no schedule Reconfig — node 0's workload
		// tuner drives the swaps itself off the measured mix, which shifts
		// from 50/50 to 95% reads mid-run while the crash storm takes the
		// tuning node (and later a second wave) down. The margins are
		// relaxed because the runner forces read write-back; the cell
		// asserts per-key linearizability across however many swaps the
		// tuner lands, not a fixed final epoch.
		// Lease cells: holders serve reads locally under a short TTL while
		// writers clear the invalidation barrier, with the usual
		// per-key linearizability check over the combined history.
		// MinReadFrac < 0 is deliberate — the mixed workload would never
		// qualify as read-heavy, and these cells exist to stress the
		// barrier, not the grant policy.
		//
		// lease/maj9-holder crashes the leaseholders themselves: nodes 0
		// and 1 hold leases and sit squarely in the crash storm's first
		// wave, so members must keep blocking conflicting writes until the
		// dead holders' entries provably expire, then let writes flow.
		{Name: "lease/maj9-holder", Initial: &initMaj, Space: 16,
			Ops: 12, Keys: 8,
			Lease: &lease.Config{
				Shards:      8,
				TTL:         400 * time.Millisecond,
				Check:       100 * time.Millisecond,
				MinReadFrac: -1,
				Acquire:     true,
			},
			LeaseOn:   []cluster.NodeID{0, 1},
			Schedules: []nemesis.Schedule{nemesis.CrashStorm(16)}},
		// lease/maj9-writer crashes writers mid-invalidation: the holder
		// (node 8) goes dark first so every writer stalls in its
		// invalidation phase against a dead leaseholder, then two writers
		// crash inside that window. Their maybe-writes must stay safe and
		// the survivors must unblock once the lease provably expires.
		{Name: "lease/maj9-writer", Initial: &initMaj, Space: 16,
			Ops: 12, Keys: 8,
			Lease: &lease.Config{
				Shards:      8,
				TTL:         400 * time.Millisecond,
				Check:       100 * time.Millisecond,
				MinReadFrac: -1,
				Acquire:     true,
			},
			LeaseOn: []cluster.NodeID{8},
			Schedules: []nemesis.Schedule{{
				Name: "writer-mid-inval",
				Actions: []nemesis.Action{
					{At: 1500 * time.Millisecond, Crash: []cluster.NodeID{8}},
					{At: 1600 * time.Millisecond, Crash: []cluster.NodeID{2, 5}},
					{At: 3 * time.Second, Restart: []cluster.NodeID{2, 5, 8}},
					{At: 5 * time.Second, Crash: []cluster.NodeID{3}},
					{At: 6 * time.Second, Restart: []cluster.NodeID{3}},
				},
				Horizon: 20 * time.Second,
			}}},
		{Name: "tune/maj9-shift", Initial: &initMaj, Space: 16,
			Ops: 40, Keys: 8, ShiftReads: 0.95,
			AutoTune: &tuner.Policy{
				Interval: 250 * time.Millisecond,
				Span:     3 * time.Second,
				HoldFor:  2,
				MinOps:   8,
				MinGain:  1.1,
				MinAvail: 0.8,
			},
			Schedules: []nemesis.Schedule{nemesis.CrashStorm(16)}},
	}
	mutexCases := []nemesis.MutexCase{
		{Name: "h-grid-3x3", System: htgrid.Auto(3, 3), Schedules: nemesis.DefaultSchedules(9)},
	}

	opt := nemesis.SweepOptions{
		Seeds:      *seeds,
		SeedBase:   *seedBase,
		OpsPerNode: *ops,
		Count:      *count,
		StateLimit: *stateLimit,
	}
	sum, err := nemesis.SweepRKV(rkvCases, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	msum, err := nemesis.SweepMutex(mutexCases, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	sum.Merge(msum)

	fmt.Print(sum)
	if n := sum.Undecided(); n > 0 {
		fmt.Printf("undecided: %d run(s) exceeded the linearizability state budget\n", n)
	}
	if n := sum.Violations(); n > 0 {
		fmt.Printf("FAIL: %d run(s) violated safety\n", n)
		os.Exit(1)
	}
	fmt.Println("ok: no safety violations")
}
