package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"hquorum/internal/epoch"
	"hquorum/internal/optrace"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
)

// numericLeaves walks a decoded JSON value and fails the test on any
// leaf under path that is not a number, bool or string — the shape
// guarantee scrapers (quorumctl, loadgen, dashboards) rely on.
func numericLeaves(t *testing.T, path string, v any) {
	t.Helper()
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			numericLeaves(t, path+"."+k, sub)
		}
	case []any:
		for _, sub := range x {
			numericLeaves(t, path+"[]", sub)
		}
	case float64, bool, string, nil:
	default:
		t.Fatalf("%s: non-scalar leaf %T", path, v)
	}
}

// TestMetricsHandlerShape is the golden-shape test for kvd's /metrics
// document: every advertised counter group must be present, and the new
// optrace group must carry every stage with a numeric count.
func TestMetricsHandlerShape(t *testing.T) {
	flavor, err := epoch.ParseFlavor("majority")
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := epoch.NewStore(4, epoch.Params{Flavor: flavor, Members: epoch.MemberRange(0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	node, err := rkv.NewNode(0, rkv.Config{Epochs: epochs, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	tn, err := transport.NewNode(0, node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	// Fold one synthetic sampled op so stage counts are exercised, not
	// just present-and-zero.
	rec := node.Tracer().Sample()
	if rec == nil {
		t.Fatal("1-in-1 tracer did not sample")
	}
	rec.Tag(optrace.KindRead, 1, 1)
	rec.Begin(optrace.StageLock)
	rec.End(optrace.StageLock)
	rec.Done()

	h := metricsHandler(node, tn, epochs, true)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}

	for _, group := range []string{
		"epoch", "config", "joint", "transport", "pick_cache",
		"workload", "lease", "wal", "optrace",
	} {
		if _, ok := doc[group]; !ok {
			t.Fatalf("missing counter group %q", group)
		}
	}
	numericLeaves(t, "metrics", doc)

	ot, ok := doc["optrace"].(map[string]any)
	if !ok {
		t.Fatalf("optrace group is %T", doc["optrace"])
	}
	for _, k := range []string{"sample_every", "sampled", "reads", "writes", "other", "avg_batch", "epoch", "stages"} {
		if _, ok := ot[k]; !ok {
			t.Fatalf("optrace group missing %q", k)
		}
	}
	stages, ok := ot["stages"].(map[string]any)
	if !ok {
		t.Fatalf("optrace stages is %T", ot["stages"])
	}
	for _, name := range optrace.StageNames() {
		st, ok := stages[name].(map[string]any)
		if !ok {
			t.Fatalf("stage %q missing or malformed", name)
		}
		if _, ok := st["count"].(float64); !ok {
			t.Fatalf("stage %q count is %T", name, st["count"])
		}
	}
	if lock := stages["lock"].(map[string]any); lock["count"].(float64) != 1 {
		t.Fatalf("folded lock stage not visible: %+v", lock)
	}
	if ot["sampled"].(float64) != 1 {
		t.Fatalf("sampled = %v", ot["sampled"])
	}
}
