// Command kvd runs one replica of the quorum-replicated register as a real
// process speaking TCP — the deployment path for the protocols the rest of
// this repository analyzes and simulates.
//
// A cluster is described by a peers file with one "id host:port" line per
// replica. The quorum construction is epoch-versioned: every replica
// starts from the same initial configuration (-store, -rows/-cols,
// -members) and a running cluster can be moved to a different flavor or
// member set with `quorumctl reconfig` — no restarts. Example, a 2×2 grid:
//
//	$ cat peers.txt
//	0 127.0.0.1:7000
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	3 127.0.0.1:7003
//
//	$ kvd -id 1 -peers peers.txt -store hgrid -rows 2 -cols 2 &
//	... (start every replica) ...
//	$ kvd -id 0 -peers peers.txt -store hgrid -rows 2 -cols 2 -write hello -then-read
//
// -members restricts the initial configuration to a subset of the peers
// file ("0-8" on a 16-entry file starts a majority-9 cluster with seven
// standby replicas — grow it later by reconfiguring to a 16-member
// config). Every process in the peers file must be started with the same
// initial configuration flags; the epoch store takes over from there.
//
// A replica with -write/-read flags performs those client operations
// against the cluster and prints the results; without them it serves
// forever. -key names the key the operations target (the store is
// multi-key: replicas hold a hash-sharded keyed map, -shards wide), so
//
//	$ kvd -id 0 -peers peers.txt -key user:42 -write hello -then-read
//
// reads back "hello" from key "user:42" without disturbing other keys.
//
// -data-dir makes the replica durable: every acknowledged write is
// committed to a per-shard write-ahead log (one fsync covers a whole
// batch) before the ack leaves the node, so a kill -9 loses nothing.
// On restart the replica replays its log, rejoins the cluster epoch and
// serves again. SIGTERM/SIGINT shut down gracefully — flush, snapshot,
// and mark the directory clean so the next start skips segment replay.
//
// -lease makes the replica acquire per-shard read leases whenever its
// measured workload is read-heavy and serve those reads locally with
// zero messages; writers to a leased shard first run a synchronous
// invalidation round against the holder. Every replica always runs the
// member side (recording leases, blocking conflicting writes) and boots
// with a write quarantine of one lease TTL plus slack, since a restart
// loses the member table. -metrics-addr exposes the lease counters
// (grants, local reads, invalidation rounds, expiries) along with the
// transport, WAL, pick-cache and workload-profiler stats.
//
// The client path degrades gracefully instead of hanging: every
// operation is bounded by -op-deadline and fails with a typed quorum
// error (ErrNoQuorum when every quorum contains a silent replica,
// ErrDegraded when trusted replicas were merely slow), attempts back
// off exponentially with jitter from -attempt-timeout, and peer dials
// are bounded by -dial-timeout. -writeback=false trades linearizable
// reads for one fewer round trip.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
	"hquorum/internal/lease"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
	"hquorum/internal/tuner"
)

func main() {
	id := flag.Int("id", -1, "this replica's ID (must appear in the peers file)")
	peersPath := flag.String("peers", "", "peers file: one 'id host:port' per line")
	store := flag.String("store", "hgrid", "initial quorum flavor: majority, hgrid, htgrid or htriang")
	rows := flag.Int("rows", 4, "grid rows (rows*cols must equal the member count; htriang's k)")
	cols := flag.Int("cols", 4, "grid cols")
	useHTGrid := flag.Bool("htgrid", false, "deprecated: same as -store htgrid")
	members := flag.String("members", "", "initial member IDs, e.g. '0-8' or '0-3,6' (default: every peer)")
	key := flag.String("key", "", "key the client operations target (empty = the classic single register)")
	shards := flag.Int("shards", 0, "replica store shard count (0 = rkv default; more shards = less lock contention across keys)")
	dataDir := flag.String("data-dir", "", "durable storage directory: back the replica with a per-shard write-ahead log so a kill -9 loses nothing acknowledged (empty = in-memory, state dies with the process)")
	snapEvery := flag.Int("snapshot-every", 0, "snapshot a shard and truncate its log segments after this many appends (0 = WAL default, negative disables)")
	write := flag.String("write", "", "perform a read-write update with this value")
	read := flag.Bool("read", false, "perform a read")
	thenRead := flag.Bool("then-read", false, "follow the write with a read")
	timeout := flag.Duration("timeout", time.Minute, "overall client budget (process exits after this long)")
	opDeadline := flag.Duration("op-deadline", 30*time.Second, "per-operation deadline: on expiry the operation fails with a typed quorum error (ErrNoQuorum/ErrDegraded) instead of retrying forever; 0 retries forever")
	attempt := flag.Duration("attempt-timeout", time.Second, "per-attempt quorum patience (grows with backoff and jitter)")
	dialTimeout := flag.Duration("dial-timeout", time.Second, "TCP dial timeout for peer connections")
	writeback := flag.Bool("writeback", true, "complete reads only after writing the observed version back to a write quorum (linearizable reads)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	autoTune := flag.Bool("auto-tune", false, "profile the workload and reconfigure the cluster live when a different quorum configuration wins under the measured read/write mix (enable on exactly one replica)")
	tuneInterval := flag.Duration("tune-interval", 0, "auto-tune evaluation period (0 = tuner default)")
	tuneHold := flag.Int("tune-hold", 0, "consecutive winning evaluations before a swap (0 = tuner default)")
	tuneMinGain := flag.Float64("tune-min-gain", 0, "cost ratio a winner must clear to trigger a swap (0 = tuner default)")
	tuneFailP := flag.Float64("tune-fail-p", 0, "per-node failure probability the optimizer scores availability at (0 = tuner default)")
	tuneMinAvail := flag.Float64("tune-min-avail", 0, "workload-weighted availability floor a candidate must clear (0 = tuner default)")
	metricsAddr := flag.String("metrics-addr", "", "serve a JSON metrics endpoint on this address (transport, WAL, pick cache, workload-profiler, lease and op-trace counters)")
	traceSample := flag.Int("trace-sample", 64, "op-trace sampling rate: stamp per-stage timings on 1 in N operations and fold them into the metrics endpoint's stage histograms (0 disables)")
	leaseOn := flag.Bool("lease", false, "acquire per-shard read leases when the measured workload is read-heavy and serve those reads locally with zero messages (writers pay an invalidation round)")
	leaseTTL := flag.Duration("lease-ttl", 0, "read-lease TTL (0 = lease default; longer = fewer renewal waves, slower writer unblock when this holder dies)")
	leaseShards := flag.Int("lease-shards", 0, "lease shard count keys hash into, 1-64 (0 = lease default; coarser is cheaper to invalidate, finer blocks fewer writers)")
	leaseMinReadFrac := flag.Float64("lease-min-read-frac", 0, "workload read fraction at or above which the holder grants/renews (0 = lease default 0.75; negative = always grant)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "kvd: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "kvd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	peers, err := transport.LoadPeers(*peersPath)
	if err != nil {
		fatal("peers: %v", err)
	}
	addr, ok := peers[cluster.NodeID(*id)]
	if !ok {
		fatal("replica %d is not in the peers file", *id)
	}

	flavorName := *store
	if *useHTGrid {
		flavorName = "htgrid"
	}
	flavor, err := epoch.ParseFlavor(flavorName)
	if err != nil {
		fatal("%v", err)
	}
	memberIDs := transport.PeerIDs(peers)
	if *members != "" {
		if memberIDs, err = epoch.ParseMembers(*members); err != nil {
			fatal("%v", err)
		}
	}
	initial := epoch.Params{Flavor: flavor, Rows: *rows, Cols: *cols, Members: memberIDs}
	epochs, err := epoch.NewStore(transport.IDSpace(peers), initial)
	if err != nil {
		fatal("%v", err)
	}

	var ops []rkv.Op
	if *write != "" {
		ops = append(ops, rkv.Op{Kind: rkv.OpWrite, Key: *key, Value: *write})
	}
	if *read || (*thenRead && *write != "") {
		ops = append(ops, rkv.Op{Kind: rkv.OpRead, Key: *key})
	}

	done := make(chan struct{})
	remaining := len(ops)
	failed := false
	storage := ""
	if *dataDir != "" {
		storage = "disk"
	}
	var tunePolicy *tuner.Policy
	if *autoTune {
		tunePolicy = &tuner.Policy{
			Interval: *tuneInterval,
			HoldFor:  *tuneHold,
			MinGain:  *tuneMinGain,
			FailP:    *tuneFailP,
			MinAvail: *tuneMinAvail,
		}
	}
	// Every kvd replica runs the lease member side with a boot
	// quarantine: a process restart loses the member table, so writes
	// this node coordinates wait out the longest lease it might have
	// recorded before the restart. Only -lease replicas also acquire.
	leaseCfg := &lease.Config{
		Shards:          *leaseShards,
		TTL:             *leaseTTL,
		MinReadFrac:     *leaseMinReadFrac,
		Acquire:         *leaseOn,
		StartQuarantine: true,
	}
	node, err := rkv.NewNode(cluster.NodeID(*id), rkv.Config{
		Epochs:        epochs,
		Shards:        *shards,
		Storage:       storage,
		DataDir:       *dataDir,
		SnapshotEvery: *snapEvery,
		Ops:           ops,
		Timeout:       *attempt,
		OpDeadline:    *opDeadline,
		ReadWriteback: *writeback,
		AutoTune:      tunePolicy,
		Lease:         leaseCfg,
		TraceSample:   *traceSample,
		OnResult: func(r rkv.Result) {
			label := r.Kind.String()
			if r.Key != "" {
				label = fmt.Sprintf("%v(%s)", r.Kind, r.Key)
			}
			if r.Err != nil {
				failed = true
				fmt.Printf("%-11s -> FAILED: %v (%d retries, t=%v)\n", label, r.Err, r.Retries, r.At)
			} else {
				fmt.Printf("%-11s -> %q (version %d.%d, %d retries, t=%v)\n",
					label, r.Value, r.Version.Counter, r.Version.Writer, r.Retries, r.At)
			}
			remaining--
			if remaining == 0 {
				close(done)
			}
		},
	})
	if err != nil {
		fatal("%v", err)
	}
	if *dataDir != "" {
		st := node.WALStats()
		how := "replayed %d record(s) from the log"
		if node.CleanStart() {
			how = "clean shutdown marker found, loaded %d record(s) from snapshots"
		}
		fmt.Fprintf(os.Stderr, "kvd: durable storage in %s: "+how+"\n", *dataDir, st.Replayed)
	}

	rkv.RegisterWire(transport.Register)
	tn, err := transport.NewNode(cluster.NodeID(*id), node, addr, transport.WithDialTimeout(*dialTimeout))
	if err != nil {
		fatal("%v", err)
	}
	defer tn.Close()
	tn.Connect(peers)
	tn.Start()
	fmt.Fprintf(os.Stderr, "kvd: replica %d serving on %s (epoch %d: %v)\n",
		*id, tn.Addr(), epochs.Epoch(), initial)
	if *autoTune {
		tn.Kick(0, rkv.TuneToken())
		fmt.Fprintf(os.Stderr, "kvd: auto-tune enabled\n")
	}
	if *leaseOn {
		tn.Kick(0, rkv.LeaseToken())
		fmt.Fprintf(os.Stderr, "kvd: read leases enabled (%d shards, ttl %v)\n",
			leaseCfg.WithDefaults().Shards, leaseCfg.WithDefaults().TTL)
	}
	var metrics *http.Server
	if *metricsAddr != "" {
		metrics, err = serveMetrics(*metricsAddr, metricsHandler(node, tn, epochs, storage != ""))
		if err != nil {
			fatal("metrics: %v", err)
		}
	}

	if len(ops) > 0 {
		tn.Kick(0, node.StartToken())
		select {
		case <-done:
			stopMetrics(metrics)
			shutdown(node)
			if failed {
				os.Exit(1)
			}
		case <-time.After(*timeout):
			fatal("client operations timed out (are all replicas up?)")
		}
		return
	}

	// Pure replica: serve until interrupted, then shut down gracefully —
	// drain the metrics server, flush and fsync the log, snapshot every
	// shard and leave the clean-shutdown marker so the next start skips
	// the segment replay.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "kvd: shutting down")
	stopMetrics(metrics)
	shutdown(node)
}

// metricsHandler builds the /metrics endpoint: the replica's
// observability counters as one JSON document — epoch config, transport
// stats, WAL stats (disk backend), pick-cache hit rate, the tuner's
// current workload window, the lease counters and the op tracer's
// per-stage histograms.
func metricsHandler(node *rkv.Node, tn *transport.Node, epochs *epoch.Store, disk bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		cfg := epochs.Snapshot()
		hits, misses := node.PickCacheStats()
		wl := node.Workload(tn.Now())
		ls := node.LeaseStats()
		doc := map[string]any{
			"epoch":     cfg.Epoch,
			"config":    cfg.Cur.String(),
			"joint":     cfg.Joint(),
			"transport": tn.Stats(),
			"pick_cache": map[string]any{
				"hits":   hits,
				"misses": misses,
			},
			"workload": map[string]any{
				"span_us":        wl.SpanUs,
				"reads":          wl.Reads,
				"writes":         wl.Writes,
				"errors":         wl.Errors,
				"read_frac":      wl.ReadFrac(),
				"writeback_frac": wl.WritebackFrac(),
				"avg_batch":      wl.AvgBatch(),
				"avg_latency_us": uint64(wl.AvgLatency() / time.Microsecond),
				"key_skew":       wl.KeySkew(),
			},
			"lease": map[string]any{
				"grants":       ls.Grants,
				"renewals":     ls.Renewals,
				"local_reads":  ls.LocalReads,
				"inval_rounds": ls.InvalRounds,
				"expiries":     ls.Expiries,
			},
			"optrace": node.TraceSnapshot(),
		}
		if disk {
			doc["wal"] = node.WALStats()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// serveMetrics binds addr and serves the handler in the background,
// logging the bound address once. The caller owns the returned server
// and must drain it through stopMetrics on shutdown.
func serveMetrics(addr string, h http.Handler) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "kvd: metrics: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "kvd: metrics on http://%s/metrics\n", ln.Addr())
	return srv, nil
}

// stopMetrics gracefully shuts the metrics server down (bounded wait:
// in-flight scrapes finish, then the listener closes) so SIGTERM/SIGINT
// no longer abandon it mid-request.
func stopMetrics(srv *http.Server) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "kvd: metrics shutdown: %v\n", err)
	}
}

// shutdown closes the node's storage backend; a failed flush is a real
// durability problem and exits non-zero so supervisors notice.
func shutdown(node *rkv.Node) {
	if err := node.Close(); err != nil {
		fatal("shutdown: %v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvd: "+format+"\n", args...)
	os.Exit(1)
}
