// Command kvd runs one replica of the quorum-replicated register as a real
// process speaking TCP — the deployment path for the protocols the rest of
// this repository analyzes and simulates.
//
// A cluster is described by a peers file with one "id host:port" line per
// replica; the grid dimensions are derived from the replica count (the
// universe must be rows×cols of the chosen grid). Example, a 2×2 grid:
//
//	$ cat peers.txt
//	0 127.0.0.1:7000
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	3 127.0.0.1:7003
//
//	$ kvd -id 1 -peers peers.txt -rows 2 -cols 2 &
//	... (start every replica) ...
//	$ kvd -id 0 -peers peers.txt -rows 2 -cols 2 -write hello -then-read
//
// A replica with -write/-read flags performs those client operations
// against the cluster and prints the results; without them it serves
// forever. -key names the key the operations target (the store is
// multi-key: replicas hold a hash-sharded keyed map, -shards wide), so
//
//	$ kvd -id 0 -peers peers.txt -rows 2 -cols 2 -key user:42 -write hello -then-read
//
// reads back "hello" from key "user:42" without disturbing other keys.
//
// The client path degrades gracefully instead of hanging: every
// operation is bounded by -op-deadline and fails with a typed quorum
// error (ErrNoQuorum when every quorum contains a silent replica,
// ErrDegraded when trusted replicas were merely slow), attempts back
// off exponentially with jitter from -attempt-timeout, and peer dials
// are bounded by -dial-timeout. -writeback=false trades linearizable
// reads for one fewer round trip.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
)

func main() {
	id := flag.Int("id", -1, "this replica's ID (must appear in the peers file)")
	peersPath := flag.String("peers", "", "peers file: one 'id host:port' per line")
	rows := flag.Int("rows", 4, "grid rows (rows*cols must equal the replica count)")
	cols := flag.Int("cols", 4, "grid cols")
	useHTGrid := flag.Bool("htgrid", false, "write through h-T-grid quorums instead of full-lines")
	key := flag.String("key", "", "key the client operations target (empty = the classic single register)")
	shards := flag.Int("shards", 0, "replica store shard count (0 = rkv default; more shards = less lock contention across keys)")
	write := flag.String("write", "", "perform a read-write update with this value")
	read := flag.Bool("read", false, "perform a read")
	thenRead := flag.Bool("then-read", false, "follow the write with a read")
	timeout := flag.Duration("timeout", time.Minute, "overall client budget (process exits after this long)")
	opDeadline := flag.Duration("op-deadline", 30*time.Second, "per-operation deadline: on expiry the operation fails with a typed quorum error (ErrNoQuorum/ErrDegraded) instead of retrying forever; 0 retries forever")
	attempt := flag.Duration("attempt-timeout", time.Second, "per-attempt quorum patience (grows with backoff and jitter)")
	dialTimeout := flag.Duration("dial-timeout", time.Second, "TCP dial timeout for peer connections")
	writeback := flag.Bool("writeback", true, "complete reads only after writing the observed version back to a write quorum (linearizable reads)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "kvd: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "kvd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	peers, err := loadPeers(*peersPath)
	if err != nil {
		fatal("peers: %v", err)
	}
	addr, ok := peers[cluster.NodeID(*id)]
	if !ok {
		fatal("replica %d is not in the peers file", *id)
	}
	if len(peers) != *rows**cols {
		fatal("%d peers but a %dx%d grid needs %d", len(peers), *rows, *cols, *rows**cols)
	}

	h := hgrid.Auto(*rows, *cols)
	var store rkv.Store = rkv.HGridStore{H: h}
	if *useHTGrid {
		store = rkv.HTGridStore{Sys: htgrid.New(h)}
	}

	var ops []rkv.Op
	if *write != "" {
		ops = append(ops, rkv.Op{Kind: rkv.OpWrite, Key: *key, Value: *write})
	}
	if *read || (*thenRead && *write != "") {
		ops = append(ops, rkv.Op{Kind: rkv.OpRead, Key: *key})
	}

	done := make(chan struct{})
	remaining := len(ops)
	failed := false
	node, err := rkv.NewNode(cluster.NodeID(*id), rkv.Config{
		Store:         store,
		Shards:        *shards,
		Ops:           ops,
		Timeout:       *attempt,
		OpDeadline:    *opDeadline,
		ReadWriteback: *writeback,
		OnResult: func(r rkv.Result) {
			label := r.Kind.String()
			if r.Key != "" {
				label = fmt.Sprintf("%v(%s)", r.Kind, r.Key)
			}
			if r.Err != nil {
				failed = true
				fmt.Printf("%-11s -> FAILED: %v (%d retries, t=%v)\n", label, r.Err, r.Retries, r.At)
			} else {
				fmt.Printf("%-11s -> %q (version %d.%d, %d retries, t=%v)\n",
					label, r.Value, r.Version.Counter, r.Version.Writer, r.Retries, r.At)
			}
			remaining--
			if remaining == 0 {
				close(done)
			}
		},
	})
	if err != nil {
		fatal("%v", err)
	}

	rkv.RegisterWire(transport.Register)
	tn, err := transport.NewNode(cluster.NodeID(*id), node, addr, transport.WithDialTimeout(*dialTimeout))
	if err != nil {
		fatal("%v", err)
	}
	defer tn.Close()
	tn.Connect(peers)
	tn.Start()
	fmt.Fprintf(os.Stderr, "kvd: replica %d serving on %s (%s over %dx%d grid)\n",
		*id, tn.Addr(), storeName(*useHTGrid), *rows, *cols)

	if len(ops) > 0 {
		tn.Kick(0, node.StartToken())
		select {
		case <-done:
			if failed {
				os.Exit(1)
			}
		case <-time.After(*timeout):
			fatal("client operations timed out (are all replicas up?)")
		}
		return
	}

	// Pure replica: serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "kvd: shutting down")
}

func storeName(htg bool) string {
	if htg {
		return "row-cover reads / h-T-grid writes"
	}
	return "row-cover reads / full-line writes"
}

// loadPeers parses the peers file.
func loadPeers(path string) (map[cluster.NodeID]string, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -peers file")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	peers := make(map[cluster.NodeID]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'id host:port'", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad id %q", line, fields[0])
		}
		if _, dup := peers[cluster.NodeID(id)]; dup {
			return nil, fmt.Errorf("line %d: duplicate id %d", line, id)
		}
		peers[cluster.NodeID(id)] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("no peers in %s", path)
	}
	return peers, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvd: "+format+"\n", args...)
	os.Exit(1)
}
