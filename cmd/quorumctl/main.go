// Command quorumctl inspects the quorum-system constructions of this
// repository: metrics, failure probabilities, sample quorums and ASCII
// renderings.
//
// Usage:
//
//	quorumctl show <system> [args]     metrics + failure probabilities + a sample quorum
//	quorumctl quorums <system> [args]  enumerate (small systems) or sample quorums
//	quorumctl nd <system> [args]       non-domination check (n ≤ 24)
//	quorumctl importance <p> <system> [args]  per-node Birnbaum importance
//	quorumctl poly <system> [args]     transversal counts (failure polynomial)
//	quorumctl compare <system> -- <system>  failure curves + crossover
//	quorumctl byz <f> <class> <system> [args]  lift to a Byzantine system
//	quorumctl render figure1|figure2   the paper's figures
//	quorumctl reconfig [flags] <flavor> [shape]  live config swap on a TCP cluster
//	quorumctl tune [flags]             score quorum configs against a node's measured workload
//	quorumctl metrics [flags] <host:port>  fetch and render a kvd node's -metrics-addr document
//	quorumctl list                     available systems
//
// Systems and their arguments:
//
//	majority n | hqs levels degree | grouped-hqs groups size | cwlog n |
//	hgrid rows cols | flatgrid rows cols | htgrid rows cols |
//	htriang k | paths ell | y k
//
// reconfig drives a running kvd cluster (see cmd/kvd) to a new
// epoch-versioned configuration through the two-phase joint-config
// handoff — no restarts, reads and writes linearizable across the swap:
//
//	quorumctl reconfig -peers peers.txt -id 16 -contact 0 \
//	    -target-members 0-15 htgrid 4 4
//
// The client's own -id must appear in the peers file (replicas reply over
// their address book). -target-members defaults to every peer except the
// client itself. The target flavor takes its shape positionally:
// majority [r w] | hgrid rows cols | htgrid rows cols | htriang k |
// hmaj degree levels r w.
//
// tune fetches a replica's sliding-window workload profile (read/write
// mix, write-back rate) and ranks every quorum configuration the
// auto-tuner considers against it — the manual half of kvd -auto-tune.
// With -apply it drives the cluster to the winner via the same epoch
// reconfiguration:
//
//	quorumctl tune -peers peers.txt -id 16 -contact 0 [-read-frac 0.95] [-apply]
//
// metrics talks plain HTTP to a node started with -metrics-addr and
// renders the JSON counter document: one line per counter, plus the
// per-op stage-timing table (package optrace) that shows where server
// time goes — decode, queue, lock, fsync, quorum, encode, send:
//
//	quorumctl metrics 127.0.0.1:9100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/bqs"
	"hquorum/internal/cluster"
	"hquorum/internal/cwlog"
	"hquorum/internal/epoch"
	"hquorum/internal/experiments"
	"hquorum/internal/hgrid"
	"hquorum/internal/hqs"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/loadopt"
	"hquorum/internal/majority"
	"hquorum/internal/optrace"
	"hquorum/internal/paths"
	"hquorum/internal/quorum"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
	"hquorum/internal/tuner"
	"hquorum/internal/ysys"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for sampling")
	count := flag.Int("count", 5, "sample quorums to print for `quorums`")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "reconfig":
		reconfig(args[1:])
	case "tune":
		tune(args[1:])
	case "metrics":
		metricsCmd(args[1:])
	case "list":
		fmt.Println("majority n | hqs levels degree | grouped-hqs groups size | cwlog n")
		fmt.Println("hgrid rows cols | flatgrid rows cols | htgrid rows cols")
		fmt.Println("htriang k | paths ell | y k")
	case "render":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		switch args[1] {
		case "figure1":
			fmt.Print(experiments.Figure1())
		case "figure2":
			fmt.Print(experiments.Figure2())
		default:
			fail("unknown figure %q", args[1])
		}
	case "show":
		sys := buildSystem(args[1:])
		show(sys, *seed)
	case "quorums":
		sys := buildSystem(args[1:])
		quorums(sys, *seed, *count)
	case "nd":
		sys := buildSystem(args[1:])
		nd, err := quorum.IsNonDominated(sys)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s: non-dominated = %t", sys.Name(), nd)
		if !nd {
			if w, _, err := quorum.DominationWitness(sys); err == nil {
				fmt.Printf(" (witness: neither %v nor its complement contains a quorum)", w)
			}
		}
		fmt.Println()
	case "importance":
		if len(args) < 3 {
			usage()
			os.Exit(2)
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			fail("crash probability %q is not a number", args[1])
		}
		sys := buildSystem(args[2:])
		imp := analysis.Importance(sys, p)
		fmt.Printf("%s: Birnbaum importance at p=%.2f\n", sys.Name(), p)
		for i, v := range imp {
			fmt.Printf("  node %2d  %.6f\n", i, v)
		}
	case "poly":
		sys := buildSystem(args[1:])
		counts := analysis.CachedTransversalCounts(sys)
		fmt.Printf("%s: size-i transversal counts a_i (F_p = sum a_i p^i q^(n-i))\n", sys.Name())
		for i, a := range counts {
			fmt.Printf("  a_%-2d = %d\n", i, a)
		}
	case "compare":
		sep := -1
		for i, a := range args {
			if a == "--" {
				sep = i
				break
			}
		}
		if sep < 2 || sep == len(args)-1 {
			fail("usage: quorumctl compare <system...> -- <system...>")
		}
		sysA := buildSystem(args[1:sep])
		sysB := buildSystem(args[sep+1:])
		countsA := analysis.CachedTransversalCounts(sysA)
		countsB := analysis.CachedTransversalCounts(sysB)
		fmt.Printf("%-6s %14s %14s\n", "p", sysA.Name(), sysB.Name())
		for p := 0.05; p <= 0.501; p += 0.05 {
			fmt.Printf("%-6.2f %14.6f %14.6f\n", p, analysis.Failure(countsA, p), analysis.Failure(countsB, p))
		}
		if x, ok := analysis.Crossover(countsA, countsB, 0.01, 0.5); ok {
			fmt.Printf("curves cross at p ≈ %.4f\n", x)
		} else {
			fmt.Println("no crossover in (0.01, 0.5)")
		}
	case "byz":
		if len(args) < 4 {
			usage()
			os.Exit(2)
		}
		f, err := strconv.Atoi(args[1])
		if err != nil {
			fail("fault bound %q is not an integer", args[1])
		}
		class := bqs.Dissemination
		switch args[2] {
		case "dissemination":
		case "masking":
			class = bqs.Masking
		default:
			fail("unknown class %q (want dissemination|masking)", args[2])
		}
		base := buildSystem(args[3:])
		c, err := bqs.NewClustered(base, f, class)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("base:      %s (%d elements, quorums %d..%d)\n",
			base.Name(), base.Universe(), base.MinQuorumSize(), base.MaxQuorumSize())
		fmt.Printf("byzantine: %s\n", c.Name())
		fmt.Printf("           %d servers in clusters of %d, quorums %d..%d, overlap >= %d\n",
			c.Universe(), c.ClusterSize(), c.MinQuorumSize(), c.MaxQuorumSize(), c.Overlap())
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: quorumctl [flags] show|quorums|render|reconfig|tune|metrics|list ...")
	flag.PrintDefaults()
}

// reconfig implements `quorumctl reconfig`: ask a running cluster's
// coordinator to move to a new epoch-versioned configuration and wait for
// the outcome.
func reconfig(args []string) {
	fs := flag.NewFlagSet("reconfig", flag.ExitOnError)
	peersPath := fs.String("peers", "", "peers file of the running cluster (one 'id host:port' per line)")
	id := fs.Int("id", -1, "this client's ID (must appear in the peers file; not a target member)")
	contact := fs.Int("contact", -1, "replica to coordinate the change (default: lowest target member)")
	targetMembers := fs.String("target-members", "", "target member IDs, e.g. '0-15' (default: every peer except -id)")
	retry := fs.Duration("retry", time.Second, "request retry interval (the coordinator deduplicates)")
	timeout := fs.Duration("timeout", time.Minute, "overall budget for the reconfiguration")
	dialTimeout := fs.Duration("dial-timeout", time.Second, "TCP dial timeout for peer connections")
	fs.Parse(args)

	peers, err := transport.LoadPeers(*peersPath)
	if err != nil {
		fail("reconfig: peers: %v", err)
	}
	addr, ok := peers[cluster.NodeID(*id)]
	if !ok {
		fail("reconfig: client id %d is not in the peers file", *id)
	}

	target, err := parseTarget(fs.Args())
	if err != nil {
		fail("reconfig: %v", err)
	}
	if *targetMembers != "" {
		if target.Members, err = epoch.ParseMembers(*targetMembers); err != nil {
			fail("reconfig: %v", err)
		}
	} else {
		for _, pid := range transport.PeerIDs(peers) {
			if pid != cluster.NodeID(*id) {
				target.Members = append(target.Members, pid)
			}
		}
	}
	if err := target.Validate(transport.IDSpace(peers)); err != nil {
		fail("reconfig: %v", err)
	}
	coordinator := target.Members[0]
	if *contact >= 0 {
		coordinator = cluster.NodeID(*contact)
	}
	if _, ok := peers[coordinator]; !ok {
		fail("reconfig: contact %d is not in the peers file", coordinator)
	}

	done := make(chan struct{})
	var gotEpoch uint64
	var gotErr string
	client := rkv.NewReconfigClient(coordinator, target, *retry, func(epoch uint64, errText string) {
		gotEpoch, gotErr = epoch, errText
		close(done)
	})
	rkv.RegisterWire(transport.Register)
	tn, err := transport.NewNode(cluster.NodeID(*id), client, addr, transport.WithDialTimeout(*dialTimeout))
	if err != nil {
		fail("reconfig: %v", err)
	}
	defer tn.Close()
	tn.Connect(peers)
	tn.Start()
	tn.Kick(0, client.StartToken())

	select {
	case <-done:
		if gotErr != "" {
			fail("reconfig: coordinator %d: %s", coordinator, gotErr)
		}
		fmt.Printf("reconfigured: epoch %d now runs %v (coordinator %d)\n", gotEpoch, target, coordinator)
	case <-time.After(*timeout):
		fail("reconfig: no outcome within %v (is the cluster up?)", *timeout)
	}
}

// tune implements `quorumctl tune`: fetch a replica's measured workload
// (and current epoch config) over the wire, rank the whole candidate space
// against it with the same optimizer kvd -auto-tune runs, and optionally
// drive the cluster to the winner.
func tune(args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	peersPath := fs.String("peers", "", "peers file of the running cluster (one 'id host:port' per line)")
	id := fs.Int("id", -1, "this client's ID (must appear in the peers file; not a replica)")
	contact := fs.Int("contact", -1, "replica to fetch the workload from (default: lowest peer that is not -id)")
	readFrac := fs.Float64("read-frac", -1, "override the measured read fraction with a hypothetical mix (0..1)")
	failP := fs.Float64("fail-p", 0, "per-node failure probability for the availability constraint (default 0.1)")
	minAvail := fs.Float64("min-avail", 0, "mix-weighted availability floor for feasibility (default 0.998)")
	top := fs.Int("top", 8, "ranked candidates to print")
	apply := fs.Bool("apply", false, "reconfigure the cluster to the winning configuration")
	retry := fs.Duration("retry", time.Second, "request retry interval")
	timeout := fs.Duration("timeout", time.Minute, "overall budget per request")
	dialTimeout := fs.Duration("dial-timeout", time.Second, "TCP dial timeout for peer connections")
	fs.Parse(args)

	peers, err := transport.LoadPeers(*peersPath)
	if err != nil {
		fail("tune: peers: %v", err)
	}
	addr, ok := peers[cluster.NodeID(*id)]
	if !ok {
		fail("tune: client id %d is not in the peers file", *id)
	}
	contactID := cluster.NodeID(-1)
	if *contact >= 0 {
		contactID = cluster.NodeID(*contact)
	} else {
		for _, pid := range transport.PeerIDs(peers) {
			if pid != cluster.NodeID(*id) {
				contactID = pid
				break
			}
		}
	}
	if _, ok := peers[contactID]; !ok {
		fail("tune: contact %d is not in the peers file", contactID)
	}

	// Fetch the profiler snapshot and current config in one round trip.
	done := make(chan struct{})
	var wl tuner.Workload
	var cfg epoch.Config
	haveCfg := false
	wc := rkv.NewWorkloadClient(contactID, *retry, func(w tuner.Workload, c epoch.Config, have bool) {
		wl, cfg, haveCfg = w, c, have
		close(done)
	})
	rkv.RegisterWire(transport.Register)
	tn, err := transport.NewNode(cluster.NodeID(*id), wc, addr, transport.WithDialTimeout(*dialTimeout))
	if err != nil {
		fail("tune: %v", err)
	}
	tn.Connect(peers)
	tn.Start()
	tn.Kick(0, wc.StartToken())
	select {
	case <-done:
	case <-time.After(*timeout):
		tn.Close()
		fail("tune: no workload reply within %v (is the cluster up?)", *timeout)
	}
	tn.Close()
	if !haveCfg {
		fail("tune: replica %d is not epoch-versioned; start kvd with -store", contactID)
	}

	fmt.Printf("replica %d measured: %d ops over %v window (%.0f%% reads, write-back β=%.2f, avg latency %v)\n",
		contactID, wl.Ops(), time.Duration(wl.SpanUs)*time.Microsecond,
		100*wl.ReadFrac(), wl.WritebackFrac(), wl.AvgLatency())
	if *readFrac >= 0 {
		ops := wl.Ops()
		if ops == 0 {
			ops = 1000
		}
		wl = tuner.Mix(*readFrac, wl.WritebackFrac(), ops)
		fmt.Printf("scoring hypothetical mix: %.0f%% reads\n", 100**readFrac)
	}

	opt := tuner.Options{FailP: *failP, MinAvail: *minAvail}
	curScore, err := tuner.ScoreParams(cfg.Cur, wl, opt)
	if err != nil {
		fail("tune: %v", err)
	}
	ranked, err := tuner.Search(cfg.Cur.Members, wl, opt)
	if err != nil {
		fail("tune: %v", err)
	}
	best := tuner.Candidate{Params: cfg.Cur, Score: curScore}
	for _, c := range ranked {
		if c.Score.Feasible {
			best = c
			break
		}
	}

	fmt.Printf("\ncurrent (epoch %d): %v\n", cfg.Epoch, cfg.Cur)
	fmt.Printf("  %s\n", scoreLine(curScore))
	show := *top
	if show > len(ranked) {
		show = len(ranked)
	}
	fmt.Printf("\ntop %d of %d candidates:\n", show, len(ranked))
	for i, c := range ranked {
		if i >= *top {
			break
		}
		marker := " "
		if c.Params.Equal(best.Params) {
			marker = "*"
		}
		fmt.Printf("%s %2d. %v\n      %s\n", marker, i+1, c.Params, scoreLine(c.Score))
	}
	gain := curScore.Gain(best.Score)
	if best.Params.Equal(cfg.Cur) {
		fmt.Printf("\ncurrent configuration is already the winner; nothing to do\n")
		return
	}
	fmt.Printf("\nwinner saves %.2fx messages per op vs current\n", gain)
	if !*apply {
		fmt.Printf("re-run with -apply to reconfigure\n")
		return
	}

	// Drive the swap through the standard reconfiguration client. The
	// workload transport is closed, so the client ID is free to rebind.
	applyDone := make(chan struct{})
	var gotEpoch uint64
	var gotErr string
	rc := rkv.NewReconfigClient(contactID, best.Params, *retry, func(epoch uint64, errText string) {
		gotEpoch, gotErr = epoch, errText
		close(applyDone)
	})
	tn2, err := transport.NewNode(cluster.NodeID(*id), rc, addr, transport.WithDialTimeout(*dialTimeout))
	if err != nil {
		fail("tune: %v", err)
	}
	defer tn2.Close()
	tn2.Connect(peers)
	tn2.Start()
	tn2.Kick(0, rc.StartToken())
	select {
	case <-applyDone:
		if gotErr != "" {
			fail("tune: coordinator %d: %s", contactID, gotErr)
		}
		fmt.Printf("reconfigured: epoch %d now runs %v\n", gotEpoch, best.Params)
	case <-time.After(*timeout):
		fail("tune: no reconfiguration outcome within %v", *timeout)
	}
}

// scoreLine renders one Score for the tune table.
func scoreLine(s tuner.Score) string {
	feas := "feasible"
	if !s.Feasible {
		feas = "INFEASIBLE"
	}
	return fmt.Sprintf("cost %.2f msg/op (read %.2f, write %.2f)  max-load %.3f  avail %.6f  %s",
		s.Cost, s.ReadSize, s.WriteSize, s.MaxLoad, s.Avail, feas)
}

// metricsCmd implements `quorumctl metrics`: GET a kvd node's
// -metrics-addr JSON document and render it for operators — flat
// counters grouped and sorted, then the optrace stage table in pipeline
// order so "where does an op's time go" reads top to bottom.
func metricsCmd(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	raw := fs.Bool("raw", false, "dump the raw JSON document instead of rendering")
	all := fs.Bool("all", false, "show zero-count stages in the stage table")
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP fetch timeout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fail("usage: quorumctl metrics [-raw] [-all] <host:port>")
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		fail("metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		fail("metrics: read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fail("metrics: %s returned %s", url, resp.Status)
	}
	if *raw {
		os.Stdout.Write(body)
		if len(body) > 0 && body[len(body)-1] != '\n' {
			fmt.Println()
		}
		return
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		fail("metrics: %s is not a JSON object: %v", url, err)
	}

	trace, _ := doc["optrace"].(map[string]any)
	delete(doc, "optrace")
	groups := make([]string, 0, len(doc))
	for g := range doc {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("%s:\n", g)
		printCounters("  ", doc[g])
	}
	if trace != nil {
		printTrace(trace, *all)
	}
}

// printCounters renders one metrics group: scalars as aligned key/value
// lines, nested objects flattened with dotted keys, in sorted order.
func printCounters(indent string, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Printf("%s%v\n", indent, v)
		return
	}
	var flat [][2]string
	var walk func(prefix string, mm map[string]any)
	walk = func(prefix string, mm map[string]any) {
		keys := make([]string, 0, len(mm))
		for k := range mm {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch x := mm[k].(type) {
			case map[string]any:
				walk(prefix+k+".", x)
			case float64:
				flat = append(flat, [2]string{prefix + k, strconv.FormatFloat(x, 'g', -1, 64)})
			default:
				flat = append(flat, [2]string{prefix + k, fmt.Sprint(x)})
			}
		}
	}
	walk("", m)
	width := 0
	for _, kv := range flat {
		if len(kv[0]) > width {
			width = len(kv[0])
		}
	}
	for _, kv := range flat {
		fmt.Printf("%s%-*s  %s\n", indent, width, kv[0], kv[1])
	}
}

// printTrace renders the optrace group: the sampling header plus a
// per-stage latency table in pipeline order (optrace.StageNames), µs.
func printTrace(trace map[string]any, showZero bool) {
	num := func(k string) float64 {
		f, _ := trace[k].(float64)
		return f
	}
	fmt.Printf("op tracing (1-in-%.0f sampling):\n", num("sample_every"))
	fmt.Printf("  sampled %.0f ops: %.0f reads, %.0f writes, %.0f other; avg batch %.2f; epoch %.0f\n",
		num("sampled"), num("reads"), num("writes"), num("other"), num("avg_batch"), num("epoch"))
	stages, _ := trace["stages"].(map[string]any)
	if stages == nil {
		return
	}
	fmt.Printf("  %-12s %10s %10s %10s %10s %10s\n", "stage", "count", "p50_us", "p99_us", "max_us", "mean_us")
	shown := 0
	for _, name := range optrace.StageNames() {
		st, ok := stages[name].(map[string]any)
		if !ok {
			continue
		}
		cell := func(k string) float64 {
			f, _ := st[k].(float64)
			return f
		}
		count := cell("count")
		if count == 0 && !showZero {
			continue
		}
		shown++
		fmt.Printf("  %-12s %10.0f %10.1f %10.1f %10.1f %10.1f\n",
			name, count, cell("p50_us"), cell("p99_us"), cell("max_us"), cell("mean_us"))
	}
	if shown == 0 {
		fmt.Println("  (no samples yet — is -trace-sample 0, or has no traffic arrived?)")
	}
}

// parseTarget reads the positional target spec: a flavor name followed by
// its shape (majority [r w] | hgrid rows cols | htgrid rows cols |
// htriang k | hmaj degree levels r w — the same r/w thresholds at every
// level). Members are filled in by the caller.
func parseTarget(args []string) (epoch.Params, error) {
	if len(args) == 0 {
		return epoch.Params{}, fmt.Errorf("missing target flavor (majority|hgrid|htgrid|htriang|hmaj)")
	}
	flavor, err := epoch.ParseFlavor(args[0])
	if err != nil {
		return epoch.Params{}, err
	}
	p := epoch.Params{Flavor: flavor}
	switch flavor {
	case epoch.FlavorMajority:
		switch len(args) {
		case 1:
		case 3:
			p.R, p.W = intArg(args, 1), intArg(args, 2)
		default:
			return epoch.Params{}, fmt.Errorf("majority takes no shape arguments, or asymmetric thresholds r w")
		}
	case epoch.FlavorHGrid, epoch.FlavorHTGrid:
		if len(args) != 3 {
			return epoch.Params{}, fmt.Errorf("%s takes rows and cols", args[0])
		}
		p.Rows, p.Cols = intArg(args, 1), intArg(args, 2)
	case epoch.FlavorHTriang:
		if len(args) != 2 {
			return epoch.Params{}, fmt.Errorf("htriang takes k")
		}
		p.Rows = intArg(args, 1)
	case epoch.FlavorHMaj:
		if len(args) != 5 {
			return epoch.Params{}, fmt.Errorf("hmaj takes degree levels r w")
		}
		p.Rows = intArg(args, 1)
		levels := intArg(args, 2)
		if levels < 1 {
			return epoch.Params{}, fmt.Errorf("hmaj levels %d (want >= 1)", levels)
		}
		r, w := intArg(args, 3), intArg(args, 4)
		p.RL, p.WL = make([]int, levels), make([]int, levels)
		for i := 0; i < levels; i++ {
			p.RL[i], p.WL[i] = r, w
		}
	}
	return p, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func intArg(args []string, i int) int {
	if i >= len(args) {
		fail("missing argument %d", i)
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		fail("argument %q is not an integer", args[i])
	}
	return v
}

func buildSystem(args []string) quorum.System {
	if len(args) == 0 {
		fail("missing system name")
	}
	switch args[0] {
	case "majority":
		return majority.New(intArg(args, 1))
	case "hqs":
		return hqs.Uniform(intArg(args, 1), intArg(args, 2))
	case "grouped-hqs":
		return hqs.Grouped(intArg(args, 1), intArg(args, 2))
	case "cwlog":
		s, err := cwlog.Log(intArg(args, 1))
		if err != nil {
			fail("%v", err)
		}
		return s
	case "hgrid":
		return hgrid.NewRW(hgrid.Auto(intArg(args, 1), intArg(args, 2)))
	case "flatgrid":
		return hgrid.NewRW(hgrid.Flat(intArg(args, 1), intArg(args, 2)))
	case "htgrid":
		return htgrid.Auto(intArg(args, 1), intArg(args, 2))
	case "htriang":
		return htriang.New(intArg(args, 1))
	case "paths":
		return paths.New(intArg(args, 1))
	case "y":
		return ysys.New(intArg(args, 1))
	default:
		fail("unknown system %q", args[0])
		return nil
	}
}

func show(sys quorum.System, seed int64) {
	n := sys.Universe()
	fmt.Printf("system:       %s\n", sys.Name())
	fmt.Printf("universe:     %d nodes\n", n)
	fmt.Printf("quorum size:  %d..%d\n", sys.MinQuorumSize(), sys.MaxQuorumSize())
	fmt.Printf("load bound:   >= %.4f (Prop. 3.3)\n", loadopt.LowerBound(sys.MinQuorumSize(), n))
	if n <= 26 {
		fs := analysis.FailureAt(sys, experiments.Ps)
		fmt.Printf("failure prob:")
		for i, p := range experiments.Ps {
			fmt.Printf("  F(%.1f)=%.6f", p, fs[i])
		}
		fmt.Println()
	} else {
		rng := rand.New(rand.NewSource(seed))
		fmt.Printf("failure prob (Monte Carlo, 200k samples):")
		for _, p := range experiments.Ps {
			res := analysis.MonteCarloFailure(sys, p, 200000, rng)
			fmt.Printf("  F(%.1f)=%.6f±%.6f", p, res.Estimate, res.StdErr)
		}
		fmt.Println()
	}
	rng := rand.New(rand.NewSource(seed))
	q, err := sys.Pick(rng, bitset.Universe(n))
	if err != nil {
		fail("pick: %v", err)
	}
	fmt.Printf("sample:       %v (%d nodes)\n", q, q.Count())
	if r, ok := sys.(interface{ Render(bitset.Set) string }); ok {
		fmt.Println(r.Render(q))
	}
	if tri, ok := sys.(*htriang.System); ok {
		fmt.Println(tri.Render(&q))
	}
}

func quorums(sys quorum.System, seed int64, count int) {
	if e, ok := sys.(quorum.Enumerator); ok && sys.Universe() <= 20 {
		i := 0
		e.EnumerateQuorums(func(q bitset.Set) bool {
			fmt.Printf("%4d  %v\n", i, q)
			i++
			return i < 1000
		})
		if i == 1000 {
			fmt.Println("... (truncated at 1000)")
		}
		return
	}
	rng := rand.New(rand.NewSource(seed))
	live := bitset.Universe(sys.Universe())
	for i := 0; i < count; i++ {
		q, err := sys.Pick(rng, live)
		if err != nil {
			fail("pick: %v", err)
		}
		fmt.Printf("%4d  %v\n", i, q)
	}
}
