// Gateway-mode benchmarking: thousands of lightweight TCP clients
// multiplex onto a small pool of pipelined rkv sessions behind an
// internal/gateway tier, optionally over a simulated multi-region WAN
// (-regions) with latency-aware hierarchy placement (epoch.PlaceGrid)
// and cost-aware quorum sampling (rkv PickCost).
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
	"hquorum/internal/gateway"
	"hquorum/internal/histo"
	"hquorum/internal/optrace"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
)

// runGateway executes one gateway-mode cell: Rows*Cols replicas plus
// Sessions session nodes on a loopback mesh (WAN-delayed when -regions
// is set), a gateway fanning Clients closed-loop connections into the
// session pool, Inflight concurrent ops per connection.
//
// Mode "session" runs the same cluster and the same closed-loop client
// streams, but each stream submits to its session in-process (no
// gateway, no client wire): the equivalent direct-session cell the
// gateway-efficiency gate compares against — the throughput ratio
// isolates exactly what the gateway tier (TCP framing, fairness ring,
// token admission) costs.
func runGateway(spec runSpec, hist *histo.Histogram) (runResult, error) {
	n := spec.Rows * spec.Cols
	nsess := spec.Sessions
	direct := spec.Mode == "session"
	if nsess < 1 {
		return runResult{}, fmt.Errorf("-sessions must be ≥ 1")
	}
	if spec.ReconfigAt > 0 {
		return runResult{}, fmt.Errorf("-reconfig-at is not supported in gateway mode")
	}
	inflight := spec.Inflight
	if inflight < 1 {
		inflight = 1
	}
	initial, err := buildParams(spec.Store, spec.Rows, spec.Cols, n)
	if err != nil {
		return runResult{}, err
	}
	_, linkLat, pickCost, err := wanTopology(spec, n)
	if err != nil {
		return runResult{}, err
	}

	// worker accumulates one measurement stream (a gateway client worker
	// or a direct-driven session), merged into hist after shutdown.
	type worker struct {
		hist      histo.Histogram
		completed int
		failed    int
	}
	var workers []*worker
	done := make(chan struct{})
	var closeOnce sync.Once

	// Session nodes take IDs n..n+nsess-1: inside the epoch universe (so
	// they coordinate rounds) but outside the member set (so they hold no
	// replica data and join no quorum).
	universe := n + nsess
	handlers := make([]cluster.Handler, universe)
	nodes := make([]*rkv.Node, universe)
	for i := 0; i < universe; i++ {
		es, err := epoch.NewStore(universe, initial)
		if err != nil {
			return runResult{}, err
		}
		cfg := rkv.Config{
			Epochs:        es,
			Shards:        spec.Shards,
			Timeout:       spec.Timeout,
			OpDeadline:    spec.OpDeadline,
			ReadWriteback: spec.Writeback,
			Window:        spec.Window,
			Batch:         spec.Batch,
			OpGap:         -1,
			TraceSample:   spec.TraceSample,
		}
		if i >= n && pickCost != nil {
			// Sessions sample quorum candidates and take the cheapest:
			// on the WAN topologies this is what lets a hierarchical
			// flavor keep its writes region-local.
			cfg.PickCost = pickCost
			cfg.PickSamples = 8
		}
		node, err := rkv.NewNode(cluster.NodeID(i), cfg)
		if err != nil {
			return runResult{}, err
		}
		nodes[i] = node
		handlers[i] = node
	}

	var opts []transport.Option
	if linkLat != nil {
		opts = append(opts, transport.WithLinkLatency(linkLat))
	}
	mesh, err := transport.NewMesh(handlers, opts...)
	if err != nil {
		return runResult{}, err
	}
	mesh.Start()

	var gwStats gateway.Stats
	var gwTrace *optrace.Tracer
	var elapsed time.Duration
	if direct {
		// Same closed-loop streams as gateway mode, minus the gateway:
		// each client goroutine submits straight into its session node.
		for i := 0; i < nsess; i++ {
			node, tn := nodes[n+i], mesh.Node(n+i)
			node.SetWake(func() { tn.Kick(0, node.StartToken()) })
		}
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < spec.Clients; c++ {
			node := nodes[n+c%nsess]
			ops := buildWorkload(spec, int64(c))
			for w := 0; w < inflight; w++ {
				wk := &worker{}
				workers = append(workers, wk)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ch := make(chan rkv.Result, 1)
					cb := func(r rkv.Result) { ch <- r }
					for j := w; j < len(ops); j += inflight {
						t0 := time.Now()
						node.Submit(ops[j], cb)
						r := <-ch
						wk.hist.RecordDuration(time.Since(t0))
						if r.Err != nil {
							wk.failed++
						} else {
							wk.completed++
						}
					}
				}(w)
			}
		}
		go func() { wg.Wait(); closeOnce.Do(func() { close(done) }) }()
		if err := wait(done, spec.RunTimeout); err != nil {
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
	} else {
		pool := make([]gateway.Session, nsess)
		for i := 0; i < nsess; i++ {
			node, tn := nodes[n+i], mesh.Node(n+i)
			node.SetWake(func() { tn.Kick(0, node.StartToken()) })
			pool[i] = node
		}
		gwTrace = optrace.New(spec.TraceSample)
		gw, err := gateway.Serve("127.0.0.1:0", gateway.Config{
			Sessions:     pool,
			SessionDepth: spec.Window * spec.Batch,
			ClientQueue:  inflight + 4,
			// Bursts aligned with the quorum batch size let one
			// connection's pipeline fill a whole batch, so its responses
			// complete together and share a flush.
			DispatchBurst: spec.Batch,
			Trace:         gwTrace,
		})
		if err != nil {
			mesh.Close()
			return runResult{}, err
		}

		// Dial every client before the clock starts so connection setup
		// does not pollute the latency histograms.
		clients := make([]*gateway.Client, spec.Clients)
		for c := range clients {
			cl, err := gateway.Dial(gw.Addr())
			if err != nil {
				for _, prev := range clients[:c] {
					prev.Close()
				}
				gw.Close()
				mesh.Close()
				return runResult{}, fmt.Errorf("dial client %d: %w", c, err)
			}
			clients[c] = cl
		}

		// Each client connection runs Inflight closed-loop workers
		// striding its deterministic op list.
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < spec.Clients; c++ {
			ops := buildWorkload(spec, int64(c))
			cl := clients[c]
			for w := 0; w < inflight; w++ {
				wk := &worker{}
				workers = append(workers, wk)
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < len(ops); j += inflight {
						t0 := time.Now()
						_, err := cl.Do(ops[j])
						wk.hist.RecordDuration(time.Since(t0))
						if err != nil {
							wk.failed++
						} else {
							wk.completed++
						}
					}
				}(w)
			}
		}
		go func() { wg.Wait(); closeOnce.Do(func() { close(done) }) }()
		if err := wait(done, spec.RunTimeout); err != nil {
			gw.Close()
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
		gwStats = gw.Stats()
		for _, cl := range clients {
			cl.Close()
		}
		gw.Close()
	}

	meshStats := mesh.Stats()
	mesh.Close()

	res := runResult{
		Name: spec.Name, Mode: spec.Mode, Window: spec.Window,
		Batch: spec.Batch, Keys: spec.Keys, Zipf: spec.Zipf,
		Clients: spec.Clients, Nodes: n, Sessions: nsess,
		ReadFrac: spec.Reads,
		GwShed:   gwStats.Shed, GwRetries: gwStats.Retries,
		MsgsSent: meshStats.Sent, BytesOut: meshStats.BytesOut, Flushes: meshStats.Flushes,
	}
	hist.Reset()
	for _, wk := range workers {
		hist.Merge(&wk.hist)
		res.Completed += wk.completed
		res.Failed += wk.failed
	}
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	us := func(v int64) float64 { return float64(v) / 1e3 }
	res.P50us = us(hist.Quantile(0.50))
	res.P95us = us(hist.Quantile(0.95))
	res.P99us = us(hist.Quantile(0.99))
	res.P999us = us(hist.Quantile(0.999))
	res.MaxUs = us(hist.Max())
	res.MeanUs = hist.Mean() / 1e3
	var extra []*optrace.Tracer
	if gwTrace != nil {
		extra = append(extra, gwTrace)
	}
	if err := stampTrace(&res, nodes, extra); err != nil {
		return runResult{}, err
	}
	return res, nil
}

// wanTopology resolves -regions for n replicas: regionOf[i] is replica
// i's region after latency-aware placement, linkLat the one-way per-link
// delay the mesh injects, pickCost the per-replica cost vector sessions
// use for quorum sampling. All nil when no regions are configured (flat
// LAN). The gateway, its sessions and every client live in region 0.
func wanTopology(spec runSpec, n int) (regionOf []int, linkLat func(from, to cluster.NodeID) time.Duration, pickCost []time.Duration, err error) {
	if len(spec.Regions) == 0 {
		return nil, nil, nil, nil
	}
	sum := 0
	for _, c := range spec.Regions {
		if c < 1 {
			return nil, nil, nil, fmt.Errorf("-regions counts must be positive, got %v", spec.Regions)
		}
		sum += c
	}
	if sum != n {
		return nil, nil, nil, fmt.Errorf("-regions %v sums to %d nodes, the grid has %d", spec.Regions, sum, n)
	}
	// Raw placement: which physical region each incoming node sits in,
	// deterministically scrambled so the grid's row-major layout does not
	// accidentally align with the regions.
	raw := make([]int, 0, n)
	for r, c := range spec.Regions {
		for i := 0; i < c; i++ {
			raw = append(raw, r)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed * 7919))
	rng.Shuffle(n, func(i, j int) { raw[i], raw[j] = raw[j], raw[i] })

	regionOf = raw
	if spec.Store == "hgrid" || spec.Store == "htgrid" {
		// Latency-aware placement: PlaceGrid clusters co-located nodes
		// onto the same grid lines so hierarchical quorums can stay
		// region-local. Grid position p is then occupied by physical node
		// ids[p/cols][p%cols] — since mesh IDs are the grid positions, we
		// realize the placement by relabelling regions.
		lat := make([][]time.Duration, n)
		for i := range lat {
			lat[i] = make([]time.Duration, n)
			for j := range lat[i] {
				switch {
				case i == j:
				case raw[i] == raw[j]:
					lat[i][j] = spec.WanIntra
				default:
					lat[i][j] = spec.WanCross
				}
			}
		}
		ids, err := epoch.PlaceGrid(lat, spec.Rows, spec.Cols)
		if err != nil {
			return nil, nil, nil, err
		}
		regionOf = make([]int, n)
		for r := 0; r < spec.Rows; r++ {
			for c := 0; c < spec.Cols; c++ {
				regionOf[r*spec.Cols+c] = raw[ids[r][c]]
			}
		}
	}
	ro := regionOf
	regionAt := func(id cluster.NodeID) int {
		if int(id) < n {
			return ro[id]
		}
		return 0
	}
	linkLat = func(from, to cluster.NodeID) time.Duration {
		if from == to {
			return 0
		}
		if regionAt(from) == regionAt(to) {
			return spec.WanIntra
		}
		return spec.WanCross
	}
	pickCost = make([]time.Duration, n)
	for i := range pickCost {
		if ro[i] == 0 {
			pickCost[i] = spec.WanIntra
		} else {
			pickCost[i] = spec.WanCross
		}
	}
	return regionOf, linkLat, pickCost, nil
}
