// Command loadgen drives the replicated register with closed-loop clients
// and reports throughput plus latency quantiles from an HDR-style
// histogram. It is the measurement half of the live-path engine: the wire
// codec, send coalescing and op pipelining exist to move these numbers.
//
// Two transports bound the measurement from both sides:
//
//   - tcp: a real loopback-TCP mesh (cmd/kvd's deployment path) — frames,
//     bufio coalescing, syscalls. What a deployment would see.
//   - mem: the same Handler/Env protocol code over in-process channels —
//     no sockets, no frames. The protocol-scheduling ceiling; the gap
//     between mem and tcp is the transport's cost.
//
// Clients are closed-loop with a configurable window: each client node
// keeps up to -window operations in flight (window 1 is the classic
// one-at-a-time client). The headline experiment is -suite, which runs
// tcp/window=1, tcp/window=8 and mem/window=8 back to back and reports
// the pipelining speedup; scripts/bench_live.sh wraps it and keeps the
// result as a JSON artifact.
//
// Usage:
//
//	loadgen -suite -json BENCH_live.json
//	loadgen -mode tcp -window 8 -ops 4000
//	loadgen -suite -compare scripts/BENCH_live_baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/hgrid"
	"hquorum/internal/histo"
	"hquorum/internal/htgrid"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
)

type runSpec struct {
	Name    string
	Mode    string // "tcp" or "mem"
	Store   string // "hgrid", "htgrid", "majority"
	Rows    int
	Cols    int
	Clients int
	Ops     int // operations per client
	Window  int
	Reads   float64 // fraction of reads in the workload
	Value   int     // write value size in bytes
	Seed    int64

	Writeback  bool
	Timeout    time.Duration
	OpDeadline time.Duration
	RunTimeout time.Duration
}

// runResult is one benchmark cell, JSON-stable for diffing against a
// committed baseline.
type runResult struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Window    int     `json:"window"`
	Clients   int     `json:"clients"`
	Nodes     int     `json:"nodes"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P95us     float64 `json:"p95_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
	MaxUs     float64 `json:"max_us"`
	MeanUs    float64 `json:"mean_us"`
	// Transport counters (zero in mem mode: no frames, no flushes).
	MsgsSent uint64 `json:"msgs_sent"`
	BytesOut uint64 `json:"bytes_out"`
	Flushes  uint64 `json:"flushes"`
}

// report is the artifact bench_live.sh writes: the suite cells plus the
// headline ratio the acceptance gate reads.
type report struct {
	GOOS            string      `json:"goos"`
	GOARCH          string      `json:"goarch"`
	CPUs            int         `json:"cpus"`
	PipelineSpeedup float64     `json:"pipeline_speedup"` // tcp window=8 vs window=1
	Runs            []runResult `json:"runs"`
}

func main() {
	mode := flag.String("mode", "tcp", "transport: tcp (loopback mesh) or mem (in-process ceiling)")
	store := flag.String("store", "hgrid", "quorum store: hgrid, htgrid or majority")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 4, "grid cols")
	clients := flag.Int("clients", 1, "nodes that run a client workload (the rest are pure replicas)")
	ops := flag.Int("ops", 2000, "operations per client")
	window := flag.Int("window", 1, "client operations in flight per node")
	reads := flag.Float64("reads", 0.5, "fraction of operations that are reads")
	valueSize := flag.Int("value-size", 16, "write value size in bytes")
	seed := flag.Int64("seed", 1, "workload rng seed")
	writeback := flag.Bool("writeback", true, "linearizable reads (ABD write-back)")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "per-attempt quorum patience")
	opDeadline := flag.Duration("op-deadline", 15*time.Second, "per-operation deadline")
	runTimeout := flag.Duration("run-timeout", 2*time.Minute, "hard wall-clock bound per benchmark run")
	suite := flag.Bool("suite", false, "run the pipelining suite (tcp/w1, tcp/w8, mem/w8) instead of a single cell")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	comparePath := flag.String("compare", "", "baseline report JSON to compare against")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "loadgen: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	base := runSpec{
		Mode: *mode, Store: *store, Rows: *rows, Cols: *cols,
		Clients: *clients, Ops: *ops, Window: *window,
		Reads: *reads, Value: *valueSize, Seed: *seed,
		Writeback: *writeback, Timeout: *timeout,
		OpDeadline: *opDeadline, RunTimeout: *runTimeout,
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	var specs []runSpec
	if *suite {
		w1, w8, mem := base, base, base
		w1.Name, w1.Mode, w1.Window = "tcp/w1", "tcp", 1
		w8.Name, w8.Mode, w8.Window = "tcp/w8", "tcp", 8
		mem.Name, mem.Mode, mem.Window = "mem/w8", "mem", 8
		specs = []runSpec{w1, w8, mem}
	} else {
		base.Name = fmt.Sprintf("%s/w%d", base.Mode, base.Window)
		specs = []runSpec{base}
	}

	for _, spec := range specs {
		res, err := runOnce(spec)
		if err != nil {
			fatal("%s: %v", spec.Name, err)
		}
		printResult(res)
		rep.Runs = append(rep.Runs, res)
	}
	if *suite {
		w1 := find(rep.Runs, "tcp/w1")
		w8 := find(rep.Runs, "tcp/w8")
		if w1 != nil && w8 != nil && w1.OpsPerSec > 0 {
			rep.PipelineSpeedup = w8.OpsPerSec / w1.OpsPerSec
			fmt.Printf("\npipelining speedup (tcp, window 8 vs 1): %.2fx\n", rep.PipelineSpeedup)
		}
	}

	if *comparePath != "" {
		if err := compare(*comparePath, &rep); err != nil {
			fatal("compare: %v", err)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	}
}

// runOnce executes one benchmark cell: build the cluster, kick the client
// workloads, wait for every operation to resolve, aggregate.
func runOnce(spec runSpec) (runResult, error) {
	n := spec.Rows * spec.Cols
	if spec.Clients < 1 || spec.Clients > n {
		return runResult{}, fmt.Errorf("clients must be in [1, %d]", n)
	}
	if spec.Window < 1 {
		return runResult{}, fmt.Errorf("window must be positive")
	}
	st, err := buildStore(spec.Store, spec.Rows, spec.Cols)
	if err != nil {
		return runResult{}, err
	}

	total := spec.Clients * spec.Ops
	var remaining atomic.Int64
	remaining.Store(int64(total))
	done := make(chan struct{})

	// Per-client state, touched only from that node's event loop; merged
	// after the mesh has shut down.
	type clientState struct {
		hist      histo.Histogram
		completed int
		failed    int
	}
	states := make([]*clientState, spec.Clients)
	handlers := make([]cluster.Handler, n)
	nodes := make([]*rkv.Node, n)
	var closeOnce sync.Once
	for i := 0; i < n; i++ {
		cfg := rkv.Config{
			Store:         st,
			Timeout:       spec.Timeout,
			OpDeadline:    spec.OpDeadline,
			ReadWriteback: spec.Writeback,
			Window:        spec.Window,
			OpGap:         -1, // load generation: no think time
		}
		if i < spec.Clients {
			cs := &clientState{}
			states[i] = cs
			cfg.Ops = buildWorkload(spec, int64(i))
			cfg.OnResult = func(r rkv.Result) {
				cs.hist.RecordDuration(r.At - r.Start)
				if r.Err != nil {
					cs.failed++
				} else {
					cs.completed++
				}
				if remaining.Add(-1) == 0 {
					closeOnce.Do(func() { close(done) })
				}
			}
		}
		node, err := rkv.NewNode(cluster.NodeID(i), cfg)
		if err != nil {
			return runResult{}, err
		}
		nodes[i] = node
		handlers[i] = node
	}

	res := runResult{
		Name: spec.Name, Mode: spec.Mode, Window: spec.Window,
		Clients: spec.Clients, Nodes: n,
	}
	var elapsed time.Duration
	switch spec.Mode {
	case "tcp":
		mesh, err := transport.NewMesh(handlers)
		if err != nil {
			return runResult{}, err
		}
		mesh.Start()
		start := time.Now()
		for i := 0; i < spec.Clients; i++ {
			mesh.Node(i).Kick(0, nodes[i].StartToken())
		}
		if err := wait(done, spec.RunTimeout); err != nil {
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
		stats := mesh.Stats()
		mesh.Close()
		res.MsgsSent, res.BytesOut, res.Flushes = stats.Sent, stats.BytesOut, stats.Flushes
	case "mem":
		mesh := transport.NewMemMesh(handlers)
		start := time.Now()
		for i := 0; i < spec.Clients; i++ {
			mesh.Kick(i, 0, nodes[i].StartToken())
		}
		if err := wait(done, spec.RunTimeout); err != nil {
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
		mesh.Close()
	default:
		return runResult{}, fmt.Errorf("unknown mode %q", spec.Mode)
	}

	// The mesh is closed: every event loop has exited, so the per-client
	// state is quiescent and safe to merge from here.
	var hist histo.Histogram
	for _, cs := range states {
		hist.Merge(&cs.hist)
		res.Completed += cs.completed
		res.Failed += cs.failed
	}
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	us := func(v int64) float64 { return float64(v) / 1e3 }
	res.P50us = us(hist.Quantile(0.50))
	res.P95us = us(hist.Quantile(0.95))
	res.P99us = us(hist.Quantile(0.99))
	res.P999us = us(hist.Quantile(0.999))
	res.MaxUs = us(hist.Max())
	res.MeanUs = hist.Mean() / 1e3
	return res, nil
}

// buildWorkload generates a client's deterministic op mix: a seeding write
// first (so reads always observe data), then writes and reads drawn from
// the read fraction, values of the configured size.
func buildWorkload(spec runSpec, client int64) []rkv.Op {
	rng := rand.New(rand.NewSource(spec.Seed*1000 + client))
	value := func(i int) string {
		b := make([]byte, spec.Value)
		for j := range b {
			b[j] = 'a' + byte((int(client)+i+j)%26)
		}
		return string(b)
	}
	ops := make([]rkv.Op, 0, spec.Ops)
	for i := 0; i < spec.Ops; i++ {
		if i > 0 && rng.Float64() < spec.Reads {
			ops = append(ops, rkv.Op{Kind: rkv.OpRead})
		} else {
			ops = append(ops, rkv.Op{Kind: rkv.OpWrite, Value: value(i)})
		}
	}
	return ops
}

func buildStore(name string, rows, cols int) (rkv.Store, error) {
	switch name {
	case "hgrid":
		return rkv.HGridStore{H: hgrid.Auto(rows, cols)}, nil
	case "htgrid":
		return rkv.HTGridStore{Sys: htgrid.New(hgrid.Auto(rows, cols))}, nil
	case "majority":
		n := rows * cols
		return rkv.NewMajorityStore(n, n/2+1, n/2+1)
	default:
		return nil, fmt.Errorf("unknown store %q", name)
	}
}

func wait(done <-chan struct{}, limit time.Duration) error {
	select {
	case <-done:
		return nil
	case <-time.After(limit):
		return fmt.Errorf("run exceeded -run-timeout %v (cluster stuck?)", limit)
	}
}

func find(runs []runResult, name string) *runResult {
	for i := range runs {
		if runs[i].Name == name {
			return &runs[i]
		}
	}
	return nil
}

func printResult(r runResult) {
	fmt.Printf("%-8s nodes=%d clients=%d window=%d  ops=%d failed=%d  %8.0f ops/s  p50=%s p95=%s p99=%s p999=%s max=%s\n",
		r.Name, r.Nodes, r.Clients, r.Window, r.Completed, r.Failed, r.OpsPerSec,
		fmtUs(r.P50us), fmtUs(r.P95us), fmtUs(r.P99us), fmtUs(r.P999us), fmtUs(r.MaxUs))
	if r.Mode == "tcp" {
		perFlush := float64(0)
		if r.Flushes > 0 {
			perFlush = float64(r.MsgsSent) / float64(r.Flushes)
		}
		fmt.Printf("%-8s msgs=%d bytes_out=%d flushes=%d (%.1f msgs/flush)\n",
			"", r.MsgsSent, r.BytesOut, r.Flushes, perFlush)
	}
}

func fmtUs(us float64) string {
	d := time.Duration(us * float64(time.Microsecond))
	return d.Round(time.Microsecond).String()
}

// compare prints a benchstat-style old-vs-new table of the current report
// against a committed baseline, matching cells by name.
func compare(baselinePath string, cur *report) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n%-8s  %14s  %14s  %8s    %12s  %12s  %8s\n",
		"cell", "old ops/s", "new ops/s", "delta", "old p99", "new p99", "delta")
	for i := range cur.Runs {
		nr := &cur.Runs[i]
		or := find(old.Runs, nr.Name)
		if or == nil {
			fmt.Fprintf(&b, "%-8s  %14s  %14.0f  %8s\n", nr.Name, "-", nr.OpsPerSec, "new")
			continue
		}
		fmt.Fprintf(&b, "%-8s  %14.0f  %14.0f  %+7.1f%%    %12s  %12s  %+7.1f%%\n",
			nr.Name, or.OpsPerSec, nr.OpsPerSec, pct(or.OpsPerSec, nr.OpsPerSec),
			fmtUs(or.P99us), fmtUs(nr.P99us), pct(or.P99us, nr.P99us))
	}
	if old.PipelineSpeedup > 0 && cur.PipelineSpeedup > 0 {
		fmt.Fprintf(&b, "speedup   %13.2fx  %13.2fx\n", old.PipelineSpeedup, cur.PipelineSpeedup)
	}
	fmt.Print(b.String())
	return nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
