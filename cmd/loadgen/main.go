// Command loadgen drives the replicated store with closed-loop clients
// and reports throughput plus latency quantiles from an HDR-style
// histogram. It is the measurement half of the live-path engine: the wire
// codec, send coalescing, op pipelining and multi-key batching exist to
// move these numbers.
//
// Two transports bound the measurement from both sides:
//
//   - tcp: a real loopback-TCP mesh (cmd/kvd's deployment path) — frames,
//     bufio coalescing, syscalls. What a deployment would see.
//   - mem: the same Handler/Env protocol code over in-process channels —
//     no sockets, no frames. The protocol-scheduling ceiling; the gap
//     between mem and tcp is the transport's cost.
//
// -mode disk is tcp with durable replicas: every node runs the WAL
// storage backend in a temporary directory with real fsyncs, so the
// gap between tcp and disk prices the durability guarantee (group
// commit amortizes it — one fsync covers a whole batch).
//
// Clients are closed-loop with a configurable window and batch: each
// client node keeps up to -window quorum rounds in flight, each round
// coalescing up to -batch consecutive operations (one quorum pick, one
// frame per peer, K keys amortized). The workload spans -keys keys drawn
// uniformly or zipfian (-zipf); keys=1 is the paper's single register.
//
// The headline experiment is -suite, which runs tcp/window=1, tcp/window=8,
// the batched multi-key cell tcp/w8/k64b8 and their mem counterparts back
// to back and reports the pipelining and batching speedups;
// scripts/bench_live.sh wraps it, keeps the result as a JSON artifact, and
// fails on regressions beyond -tolerance against the committed baseline.
// -suite-batch and -suite-keys sweep batch size and keyspace size so the
// JSON records throughput per batch size and per key count. -suite-tune
// runs the workload-aware auto-tuner pair: a 50/50 mix that shifts to 95%
// reads mid-run, once with kvd-style -auto-tune re-shaping the cluster
// live and once holding majority, gated on a clean swap and ≥1.3x
// post-shift throughput. -suite-lease runs the read-lease pair: a
// 90%-read workload with and without per-shard read leases on the client
// node, gated on ≥2x throughput and strictly fewer messages per op — the
// local-read path must demonstrably skip quorum rounds.
//
// Usage:
//
//	loadgen -suite -json BENCH_live.json
//	loadgen -mode tcp -window 8 -keys 64 -batch 8 -zipf 1.2 -ops 4000
//	loadgen -suite -suite-batch -suite-keys -compare scripts/BENCH_live_baseline.json -tolerance 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/epoch"
	"hquorum/internal/hgrid"
	"hquorum/internal/histo"
	"hquorum/internal/htgrid"
	"hquorum/internal/lease"
	"hquorum/internal/optrace"
	"hquorum/internal/rkv"
	"hquorum/internal/transport"
	"hquorum/internal/tuner"
)

type runSpec struct {
	Name    string
	Mode    string // "tcp" or "mem"
	Store   string // "hgrid", "htgrid", "majority"
	Rows    int
	Cols    int
	Clients int
	Ops     int // operations per client
	Window  int
	Batch   int     // ops coalesced per quorum round
	Keys    int     // keyspace size (1 = single register)
	Zipf    float64 // key skew (0 = uniform, else > 1)
	Reads   float64 // fraction of reads in the workload
	Value   int     // write value size in bytes
	Seed    int64
	Shards  int // replica store shards (0 = rkv default)

	Writeback  bool
	Timeout    time.Duration
	OpDeadline time.Duration
	RunTimeout time.Duration

	// ReconfigAt, when positive, makes the cluster epoch-versioned (the
	// nodes start on Store as their initial config) and fires a live swap
	// to ReconfigTo once that many operations have completed cluster-wide.
	// tcp mode only.
	ReconfigAt int
	ReconfigTo string

	// ShiftReads, when positive, makes every client switch its read
	// fraction from Reads to ShiftReads halfway through its op list — the
	// mid-run mix shift the auto-tuner cells react to. The cluster runs
	// epoch-versioned (tcp mode only) and the result splits throughput at
	// the shift point. AutoTune additionally runs the workload-aware
	// tuner on node 0, which must detect the new mix and re-shape the
	// cluster live.
	ShiftReads float64
	AutoTune   bool

	// Lease arms the read-lease holder on node 0 (tcp mode only): once
	// the workload window measures read-heavy, the node acquires
	// per-shard leases and serves its reads locally with zero messages,
	// while its writes keep the lease fresh via self-apply.
	Lease bool

	// Gateway mode: Clients lightweight connections multiplex onto
	// Sessions shared rkv sessions behind a gateway tier; Inflight is the
	// closed-loop pipelining depth per client connection.
	Sessions int
	Inflight int

	// Optional 3-region-style WAN topology (gateway mode): node counts
	// per region (summing to Rows*Cols); the gateway, its sessions and
	// every client live in region 0. Links inside a region cost WanIntra
	// one-way, links across regions WanCross. Grid flavors place nodes
	// onto the hierarchy with epoch.PlaceGrid; sessions pick quorums
	// cost-aware (rkv PickCost sampling).
	Regions  []int
	WanIntra time.Duration
	WanCross time.Duration

	// TraceSample arms the server-side op tracer on every node (and the
	// gateway) at 1-in-N sampling; the merged stage snapshot is stamped
	// into the cell's result so the archived artifact explains where
	// server time went, not just how much there was.
	TraceSample int

	// Trials, when > 1, runs the cell that many times, interleaved with
	// the other multi-trial cells, and reports one representative run:
	// the highest-throughput one, or the median-p99 one when TailCell is
	// set (a latency gate should see typical tails — a single lucky or
	// unlucky draw on either side would decide it otherwise). Single
	// co-sampled runs on a small machine confound gates with GC and
	// scheduler noise.
	Trials   int
	TailCell bool
}

// runResult is one benchmark cell, JSON-stable for diffing against a
// committed baseline. Keys and Batch make the per-key-count and
// per-batch-size sweeps self-describing in the artifact.
type runResult struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Window    int     `json:"window"`
	Batch     int     `json:"batch"`
	Keys      int     `json:"keys"`
	Zipf      float64 `json:"zipf,omitempty"`
	Clients   int     `json:"clients"`
	Nodes     int     `json:"nodes"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P95us     float64 `json:"p95_us"`
	P99us     float64 `json:"p99_us"`
	P999us    float64 `json:"p999_us"`
	MaxUs     float64 `json:"max_us"`
	MeanUs    float64 `json:"mean_us"`
	// ReadFrac stamps the cell's configured read fraction so compare()
	// can refuse to gate throughput across differing mixes; ShiftReadFrac
	// is the post-shift fraction of mix-shift cells. ReadOps/WriteOps and
	// the per-kind quantiles split the latency picture by operation kind
	// (reads and writes traverse different quorum paths, so one merged
	// histogram hides the asymmetry the tuner exploits).
	ReadFrac      float64 `json:"read_frac,omitempty"`
	ShiftReadFrac float64 `json:"shift_read_frac,omitempty"`
	ReadOps       int     `json:"read_ops,omitempty"`
	WriteOps      int     `json:"write_ops,omitempty"`
	ReadP50us     float64 `json:"read_p50_us,omitempty"`
	ReadP99us     float64 `json:"read_p99_us,omitempty"`
	WriteP50us    float64 `json:"write_p50_us,omitempty"`
	WriteP99us    float64 `json:"write_p99_us,omitempty"`
	// Transport counters (zero in mem mode: no frames, no flushes).
	MsgsSent uint64 `json:"msgs_sent"`
	BytesOut uint64 `json:"bytes_out"`
	Flushes  uint64 `json:"flushes"`
	// Reconfiguration cell fields (zero unless -reconfig-at fired): the
	// throughput before and after the swap was kicked, the number of
	// operations that failed during the transition window, and the epoch
	// the cluster settled at.
	ReconfigAt     int     `json:"reconfig_at,omitempty"`
	PreOpsPerSec   float64 `json:"pre_ops_per_sec,omitempty"`
	PostOpsPerSec  float64 `json:"post_ops_per_sec,omitempty"`
	TransitionErrs int     `json:"transition_errs,omitempty"`
	FinalEpoch     uint64  `json:"final_epoch,omitempty"`
	// Gateway cell fields (zero in direct modes).
	Sessions  int    `json:"sessions,omitempty"`
	GwShed    uint64 `json:"gw_shed,omitempty"`
	GwRetries uint64 `json:"gw_retries,omitempty"`
	// Lease cell fields (zero unless -lease/-suite-lease armed the
	// holder): summed across nodes, so InvalRounds counts every writer's
	// barrier rounds, not just the holder's.
	LeaseGrants      uint64 `json:"lease_grants,omitempty"`
	LeaseLocalReads  uint64 `json:"lease_local_reads,omitempty"`
	LeaseInvalRounds uint64 `json:"lease_inval_rounds,omitempty"`
	LeaseExpiries    uint64 `json:"lease_expiries,omitempty"`
	// Server-side stage breakdown (package optrace), merged across every
	// node's tracer after the run: nonzero stages only, wire payloads
	// stripped — the artifact explains the cell's latency, it is not a
	// further merge input. TraceSampled is how many ops the 1-in-N
	// sampler actually traced.
	TraceSampled uint64                       `json:"trace_sampled,omitempty"`
	Stages       map[string]optrace.StageStat `json:"stages,omitempty"`
}

// report is the artifact bench_live.sh writes: the suite cells plus the
// headline ratios the acceptance gates read.
type report struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// CPUs is the machine's logical CPU count; GOMAXPROCS is what the Go
	// scheduler was actually allowed to use for this run. Both are
	// recorded because throughput numbers are meaningless across
	// differing CPU budgets — compare() refuses to gate in that case.
	CPUs            int     `json:"cpus"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	PipelineSpeedup float64 `json:"pipeline_speedup"` // tcp window=8 vs window=1
	BatchSpeedup    float64 `json:"batch_speedup"`    // tcp w8/k64b8 vs w8 single-key
	// GatewayEfficiency is gateway-mode throughput over the equivalent
	// direct-session cell; WanP99* are the 3-region tail-latency cells'
	// p99s (best hierarchical flavor vs majority).
	GatewayEfficiency float64 `json:"gateway_efficiency,omitempty"`
	WanP99HierUs      float64 `json:"wan_p99_hier_us,omitempty"`
	WanP99MajorityUs  float64 `json:"wan_p99_majority_us,omitempty"`
	// TuneSpeedup is the auto-tuner pair's post-shift throughput ratio:
	// the self-reconfiguring cell over the one that stays on majority.
	TuneSpeedup float64 `json:"tune_speedup,omitempty"`
	// LeaseSpeedup is the read-lease pair's throughput ratio: the leased
	// 90%-read cell over the identical mix on the plain quorum path.
	LeaseSpeedup float64 `json:"lease_speedup,omitempty"`
	// ServerTrace is a live kvd node's optrace snapshot fetched from its
	// -metrics-addr endpoint after the run (only when loadgen was pointed
	// at one with its own -metrics-addr flag) — the deployment-side
	// counterpart of the per-cell Stages stamp.
	ServerTrace *optrace.Snapshot `json:"server_trace,omitempty"`
	Runs        []runResult       `json:"runs"`
}

func main() {
	mode := flag.String("mode", "tcp", "transport: tcp (loopback mesh), mem (in-process ceiling), disk (tcp with WAL-durable replicas, real fsyncs) or gateway (clients multiplexed onto shared sessions)")
	store := flag.String("store", "hgrid", "quorum store: hgrid, htgrid or majority")
	rows := flag.Int("rows", 4, "grid rows")
	cols := flag.Int("cols", 4, "grid cols")
	clients := flag.Int("clients", 1, "nodes that run a client workload (the rest are pure replicas)")
	ops := flag.Int("ops", 2000, "operations per client")
	window := flag.Int("window", 1, "client quorum rounds in flight per node")
	batch := flag.Int("batch", 1, "consecutive operations coalesced into one quorum round")
	keys := flag.Int("keys", 1, "keyspace size (1 = the classic single register)")
	zipf := flag.Float64("zipf", 0, "zipfian key skew s (0 = uniform; otherwise must be > 1)")
	reads := flag.Float64("reads", 0.5, "fraction of operations that are reads")
	flag.Float64Var(reads, "read-frac", 0.5, "alias of -reads")
	valueSize := flag.Int("value-size", 16, "write value size in bytes")
	seed := flag.Int64("seed", 1, "workload rng seed")
	shards := flag.Int("shards", 0, "replica store shard count (0 = rkv default)")
	reconfigAt := flag.Int("reconfig-at", 0, "fire a live config swap after this many completed operations (0 = off; tcp mode only)")
	reconfigTo := flag.String("reconfig-to", "htgrid", "target quorum flavor for -reconfig-at (majority, hgrid or htgrid; same grid shape)")
	sessions := flag.Int("sessions", 4, "gateway mode: shared quorum sessions behind the gateway")
	inflight := flag.Int("inflight", 1, "gateway mode: concurrent operations per client connection")
	regions := flag.String("regions", "", "gateway mode: WAN topology as node counts per region, e.g. 8,4,4 (empty = flat LAN)")
	wanIntra := flag.Duration("wan-intra", 200*time.Microsecond, "one-way latency inside a region (-regions)")
	wanCross := flag.Duration("wan-cross", 10*time.Millisecond, "one-way latency across regions (-regions)")
	writeback := flag.Bool("writeback", true, "linearizable reads (ABD write-back)")
	timeout := flag.Duration("timeout", 500*time.Millisecond, "per-attempt quorum patience")
	opDeadline := flag.Duration("op-deadline", 15*time.Second, "per-operation deadline")
	runTimeout := flag.Duration("run-timeout", 2*time.Minute, "hard wall-clock bound per benchmark run")
	suite := flag.Bool("suite", false, "run the headline suite (tcp/w1, tcp/w8, tcp/w8/k64b8, mem/w8, mem/w8/k64b8, tcp/w8/k64b8/disk)")
	suiteBatch := flag.Bool("suite-batch", false, "sweep batch sizes 1,2,4,8,16 at keys=64 window=8 (tcp)")
	suiteKeys := flag.Bool("suite-keys", false, "sweep key counts 1,4,16,64,256 at batch=8 window=8 (tcp)")
	suiteGW := flag.Bool("suite-gw", false, "run the gateway efficiency pair (128 client streams direct-to-session vs through the gateway) and gate ≥0.7x")
	suiteWAN := flag.Bool("suite-wan", false, "run the 3-region tail-latency cells (1000 gateway clients; majority vs hgrid vs htgrid) and gate hierarchy p99 < majority p99")
	suiteTune := flag.Bool("suite-tune", false, "run the auto-tuner pair (mid-run 50/50→95%-read shift, kvd-style -auto-tune vs staying on majority) and gate the live swap + ≥1.3x post-shift throughput")
	suiteLease := flag.Bool("suite-lease", false, "run the read-lease pair (90%-read workload with and without the holder's local-read leases) and gate ≥2x throughput + strictly fewer msgs/op")
	leaseOn := flag.Bool("lease", false, "arm the read-lease holder on node 0 (tcp mode only)")
	traceSample := flag.Int("trace-sample", 64, "server-side op tracing: sample 1 in N ops per node (0 = off); stamps the per-stage breakdown into the report")
	stageSanity := flag.String("stage-sanity", "", "assert the named cell's server stage medians sum ≤ its client p50 and ≥5 stages saw samples (e.g. tcp/w8/k64b8)")
	metricsAddr := flag.String("metrics-addr", "", "fetch a running kvd node's /metrics after the run and stamp its optrace snapshot into the report")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	comparePath := flag.String("compare", "", "baseline report JSON to compare against")
	tolerance := flag.Float64("tolerance", 0.10, "max fractional ops/s regression vs -compare baseline before exiting nonzero")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the whole run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("%v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "loadgen: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *zipf != 0 && *zipf <= 1 {
		fatal("-zipf must be 0 (uniform) or > 1 (rand.Zipf's domain), got %v", *zipf)
	}
	if *keys < 1 || *batch < 1 || *window < 1 {
		fatal("-keys, -batch and -window must be positive")
	}
	var regionCounts []int
	if *regions != "" {
		for _, part := range strings.Split(*regions, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fatal("-regions wants positive node counts like 8,4,4, got %q", part)
			}
			regionCounts = append(regionCounts, v)
		}
	}

	base := runSpec{
		Mode: *mode, Store: *store, Rows: *rows, Cols: *cols,
		Clients: *clients, Ops: *ops, Window: *window,
		Batch: *batch, Keys: *keys, Zipf: *zipf,
		Reads: *reads, Value: *valueSize, Seed: *seed, Shards: *shards,
		Writeback: *writeback, Timeout: *timeout,
		OpDeadline: *opDeadline, RunTimeout: *runTimeout,
		ReconfigAt: *reconfigAt, ReconfigTo: *reconfigTo,
		Sessions: *sessions, Inflight: *inflight,
		Regions: regionCounts, WanIntra: *wanIntra, WanCross: *wanCross,
		Lease: *leaseOn, TraceSample: *traceSample,
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var specs []runSpec
	cell := func(mode string, window, keys, batch int) runSpec {
		s := base
		s.Mode, s.Window, s.Keys, s.Batch = mode, window, keys, batch
		s.ReconfigAt = 0 // sweep cells never reconfigure; the rc cell opts in below
		s.Name = cellName(mode, window, keys, batch)
		// Every gated cell reports best-of-3 interleaved trials: the
		// committed baseline then holds peak estimates, and the -compare
		// tolerance judges peak against peak instead of whichever noise
		// each run happened to sample.
		s.Trials = 3
		return s
	}
	if *suite {
		specs = append(specs,
			cell("tcp", 1, 1, 1),
			cell("tcp", 8, 1, 1),
			cell("tcp", 8, 64, 8),
			cell("mem", 8, 1, 1),
			cell("mem", 8, 64, 8),
		)
		// Durable cell: the batched multi-key workload with every replica on
		// the disk WAL backend and real fsyncs — the throughput delta against
		// tcp/w8/k64b8 prices durability, bounded by group commit (one fsync
		// per quorum round, not per op).
		d := cell("disk", 8, 64, 8)
		d.Name = "tcp/w8/k64b8/disk"
		specs = append(specs, d)
		// Steady-state-after-reconfig cell: start on majority, swap to the
		// h-T-grid a quarter of the way in, and let the remaining three
		// quarters measure the post-swap steady state. Gated against the
		// committed baseline like every other cell.
		rc := cell("tcp", 8, 1, 1)
		rc.Name = "tcp/w8/rc"
		rc.Store = "majority"
		rc.ReconfigAt = rc.Clients * rc.Ops / 4
		rc.ReconfigTo = "htgrid"
		specs = append(specs, rc)
	}
	if *suiteBatch {
		for _, b := range []int{1, 2, 4, 8, 16} {
			specs = append(specs, cell("tcp", 8, 64, b))
		}
	}
	if *suiteKeys {
		for _, k := range []int{1, 4, 16, 64, 256} {
			specs = append(specs, cell("tcp", 8, k, 8))
		}
	}
	if *suiteGW {
		// The efficiency pair: 128 closed-loop client streams (16
		// connections × 8 in-flight) over the identical 16-replica +
		// 1-session cluster, once submitting in-process (mode "session")
		// and once through the gateway wire. The ratio isolates what the
		// gateway tier costs — TCP framing, the fairness ring, token
		// admission — and the gate below insists it keeps ≥70% of
		// direct-session throughput.
		// The ratio needs a steady state long enough to wash out connection
		// setup and first-batch warmup, so the pair gets a floor on its op
		// budget regardless of how small the sweep cells are.
		total := base.Clients * base.Ops
		if total < 120000 {
			total = 120000
		}
		sess := cell("session", 8, 64, 8)
		sess.Name = "sess/w8/k64b8/c16x8"
		sess.Sessions = 1
		sess.Clients = 16
		sess.Inflight = 8
		sess.Ops = (total + 15) / 16
		sess.Regions = nil
		sess.Trials = 5 // the gate compares best-of-5 on both sides
		specs = append(specs, sess)
		gw := sess
		gw.Mode = "gateway"
		gw.Name = "gw/w8/k64b8/c16x8"
		specs = append(specs, gw)
	}
	if *suiteWAN {
		// The tail-latency thesis on a simulated 3-region WAN: 1000
		// closed-loop clients, zipf-contended keys, identical topology and
		// session budget per flavor — only the quorum system differs.
		wanRegions := regionCounts
		if len(wanRegions) == 0 {
			wanRegions = []int{8, 4, 4}
		}
		for _, flavor := range []string{"majority", "hgrid", "htgrid"} {
			s := cell("gateway", 16, 64, 16)
			s.Name = "wan3/" + flavor + "/c1000"
			s.Store = flavor
			s.Rows, s.Cols = 4, 4
			s.Clients = 1000
			s.Ops = max(10, base.Ops/400)
			s.Sessions = 4
			s.Zipf = 1.1
			s.Regions = wanRegions
			s.WanIntra, s.WanCross = *wanIntra, *wanCross
			// The gate compares p99 tails across flavors: interleaved
			// best-of-3 (lowest p99) so one noisy stretch cannot decide it.
			s.Trials = 3
			s.TailCell = true
			specs = append(specs, s)
		}
	}
	if *suiteTune {
		// The self-tuning pair: identical 16-node clusters on majority under
		// a 50/50 mix that shifts to 95% reads halfway through. One cell
		// runs the workload-aware auto-tuner on node 0 (which must measure
		// the shift and re-shape the cluster to an asymmetric configuration
		// live), the other holds majority; the gate below compares their
		// post-shift throughput. Write-back is off so the read path's quorum
		// size — what the tuner optimizes — is what the cells measure.
		total := base.Clients * base.Ops
		if total < 600000 {
			total = 600000
		}
		tc := cell("tcp", 8, 64, 8)
		tc.Name = "tcp/w8/k64b8/tune"
		tc.Store = "majority"
		tc.Clients = 1
		tc.Ops = total
		tc.Reads = 0.5
		tc.ShiftReads = 0.95
		tc.Writeback = false
		tc.AutoTune = true
		specs = append(specs, tc)
		hold := tc
		hold.AutoTune = false
		hold.Name = "tcp/w8/k64b8/hold"
		specs = append(specs, hold)
	}
	if *suiteLease {
		// The read-lease pair: a single 90%-read client on the identical
		// 16-node cluster, once on the plain quorum read path and once
		// holding per-shard read leases (granted by the workload-window
		// policy once the mix measures read-heavy). The gate below wants
		// the leased cell ≥2x faster AND strictly cheaper on the wire —
		// the local-read path must actually skip quorum rounds, not just
		// win a scheduling lottery.
		total := base.Clients * base.Ops
		if total < 300000 {
			total = 300000
		}
		lr := cell("tcp", 8, 64, 8)
		lr.Name = "tcp/w8/k64b8/r90"
		lr.Clients = 1
		lr.Ops = total
		lr.Reads = 0.9
		specs = append(specs, lr)
		lc := lr
		lc.Name = "tcp/w8/k64b8/lease"
		lc.Lease = true
		specs = append(specs, lc)
	}
	if len(specs) == 0 {
		base.Name = cellName(base.Mode, base.Window, base.Keys, base.Batch)
		if base.ReconfigAt > 0 {
			base.Name += "/rc"
		}
		if base.Lease {
			base.Name += "/lease"
		}
		specs = []runSpec{base}
	} else {
		specs = dedupe(specs)
	}

	// One scratch histogram reused (histo.Reset) across every cell: the
	// merge target never reallocates its ~30KB bucket array per run.
	var scratch histo.Histogram
	// Cells run in rounds: round 0 runs every cell, later rounds only the
	// ones asking for more Trials. Interleaving a ratio pair's trials
	// (instead of exhausting one cell's, then the other's) makes both
	// sides sample the same stretches of machine noise, so a transient
	// slowdown cannot sink one side of the ratio alone.
	maxTrials := 1
	for _, spec := range specs {
		if spec.Trials > maxTrials {
			maxTrials = spec.Trials
		}
	}
	trials := make([][]runResult, len(specs))
	for t := 0; t < maxTrials; t++ {
		for i, spec := range specs {
			if t > 0 && t >= spec.Trials {
				continue
			}
			res, err := runOnce(spec, &scratch)
			if err != nil {
				fatal("%s (trial %d): %v", spec.Name, t+1, err)
			}
			trials[i] = append(trials[i], res)
		}
	}
	for i, spec := range specs {
		res := trials[i][0]
		if spec.TailCell {
			// Median p99 across trials: the representative tail.
			sorted := append([]runResult(nil), trials[i]...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a].P99us < sorted[b].P99us })
			res = sorted[len(sorted)/2]
		} else {
			for _, r := range trials[i][1:] {
				if r.OpsPerSec > res.OpsPerSec {
					res = r
				}
			}
		}
		printResult(res)
		rep.Runs = append(rep.Runs, res)
	}
	if w1, w8 := find(rep.Runs, "tcp/w1"), find(rep.Runs, "tcp/w8"); w1 != nil && w8 != nil && w1.OpsPerSec > 0 {
		rep.PipelineSpeedup = w8.OpsPerSec / w1.OpsPerSec
		fmt.Printf("\npipelining speedup (tcp, window 8 vs 1): %.2fx\n", rep.PipelineSpeedup)
	}
	if w8, kb := find(rep.Runs, "tcp/w8"), find(rep.Runs, "tcp/w8/k64b8"); w8 != nil && kb != nil && w8.OpsPerSec > 0 {
		rep.BatchSpeedup = kb.OpsPerSec / w8.OpsPerSec
		fmt.Printf("batching speedup (tcp/w8, 64 keys batch 8 vs single-key): %.2fx\n", rep.BatchSpeedup)
	}
	var gates []string
	if *suiteGW {
		si, gi := -1, -1
		for i := range specs {
			switch specs[i].Name {
			case "sess/w8/k64b8/c16x8":
				si = i
			case "gw/w8/k64b8/c16x8":
				gi = i
			}
		}
		if si >= 0 && gi >= 0 {
			// Matched-trial ratio: trial t of the two cells ran back to
			// back, so a transient machine slowdown hits both sides of
			// that pair; the best pair over the interleaved trials is the
			// closest estimate of the intrinsic gateway overhead.
			for t := 0; t < len(trials[gi]) && t < len(trials[si]); t++ {
				if d := trials[si][t].OpsPerSec; d > 0 {
					if r := trials[gi][t].OpsPerSec / d; r > rep.GatewayEfficiency {
						rep.GatewayEfficiency = r
					}
				}
			}
			fmt.Printf("gateway efficiency (128 muxed client streams vs direct sessions): %.2fx\n", rep.GatewayEfficiency)
			if rep.GatewayEfficiency < 0.7 {
				gates = append(gates, fmt.Sprintf("gateway efficiency %.2fx < 0.70x direct", rep.GatewayEfficiency))
			}
		}
	}
	if *suiteWAN {
		maj := find(rep.Runs, "wan3/majority/c1000")
		hg := find(rep.Runs, "wan3/hgrid/c1000")
		ht := find(rep.Runs, "wan3/htgrid/c1000")
		if maj != nil && hg != nil && ht != nil {
			rep.WanP99MajorityUs = maj.P99us
			rep.WanP99HierUs = math.Min(hg.P99us, ht.P99us)
			fmt.Printf("3-region p99 tail (1000 clients): hierarchy %s vs majority %s\n",
				fmtUs(rep.WanP99HierUs), fmtUs(rep.WanP99MajorityUs))
			if rep.WanP99HierUs >= rep.WanP99MajorityUs {
				gates = append(gates, fmt.Sprintf("hierarchical p99 %s not better than majority %s on the 3-region WAN",
					fmtUs(rep.WanP99HierUs), fmtUs(rep.WanP99MajorityUs)))
			}
		}
	}

	if *suiteTune {
		ti, hi := -1, -1
		for i := range specs {
			switch specs[i].Name {
			case "tcp/w8/k64b8/tune":
				ti = i
			case "tcp/w8/k64b8/hold":
				hi = i
			}
		}
		if ti >= 0 && hi >= 0 {
			// The swap itself must be clean on every trial — a tuner that
			// sometimes misses the shift or drops operations mid-transition
			// is broken, however fast its best run.
			for t, r := range trials[ti] {
				if r.FinalEpoch < 3 {
					gates = append(gates, fmt.Sprintf("auto-tune trial %d never completed a swap (settled epoch %d)", t+1, r.FinalEpoch))
				}
				if r.TransitionErrs != 0 {
					gates = append(gates, fmt.Sprintf("auto-tune trial %d: %d op errors after the mix shift", t+1, r.TransitionErrs))
				}
			}
			// Matched-trial post-shift ratio, like the gateway pair: trial t
			// of both cells ran back to back, so machine noise cancels.
			for t := 0; t < len(trials[ti]) && t < len(trials[hi]); t++ {
				if d := trials[hi][t].PostOpsPerSec; d > 0 {
					if r := trials[ti][t].PostOpsPerSec / d; r > rep.TuneSpeedup {
						rep.TuneSpeedup = r
					}
				}
			}
			fmt.Printf("auto-tune speedup (post-shift, self-tuned vs staying on majority): %.2fx\n", rep.TuneSpeedup)
			if rep.TuneSpeedup < 1.3 {
				gates = append(gates, fmt.Sprintf("auto-tune post-shift speedup %.2fx < 1.30x", rep.TuneSpeedup))
			}
			// The asymmetric winner must also be cheaper on the wire, not
			// just faster end to end.
			tr, hr := find(rep.Runs, "tcp/w8/k64b8/tune"), find(rep.Runs, "tcp/w8/k64b8/hold")
			if tr != nil && hr != nil && tr.Completed > 0 && hr.Completed > 0 {
				tm := float64(tr.MsgsSent) / float64(tr.Completed)
				hm := float64(hr.MsgsSent) / float64(hr.Completed)
				fmt.Printf("wire cost: tuned %.2f msgs/op vs majority %.2f msgs/op\n", tm, hm)
				if tm >= hm {
					gates = append(gates, fmt.Sprintf("tuned config sends %.2f msgs/op, not cheaper than majority's %.2f", tm, hm))
				}
			}
		}
	}

	if *suiteLease {
		ri, li := -1, -1
		for i := range specs {
			switch specs[i].Name {
			case "tcp/w8/k64b8/r90":
				ri = i
			case "tcp/w8/k64b8/lease":
				li = i
			}
		}
		if ri >= 0 && li >= 0 {
			// Matched-trial ratio like the tune and gateway pairs: trial t of
			// both cells ran back to back, so machine noise cancels inside
			// each pair.
			for t := 0; t < len(trials[li]) && t < len(trials[ri]); t++ {
				if d := trials[ri][t].OpsPerSec; d > 0 {
					if r := trials[li][t].OpsPerSec / d; r > rep.LeaseSpeedup {
						rep.LeaseSpeedup = r
					}
				}
			}
			fmt.Printf("read-lease speedup (90%% reads, leased vs plain quorum): %.2fx\n", rep.LeaseSpeedup)
			if rep.LeaseSpeedup < 2.0 {
				gates = append(gates, fmt.Sprintf("read-lease speedup %.2fx < 2.00x", rep.LeaseSpeedup))
			}
			// The speedup must come from skipping quorum rounds, not from a
			// lucky run: the leased cell has to be strictly cheaper per op on
			// the wire.
			lr, rr := find(rep.Runs, "tcp/w8/k64b8/lease"), find(rep.Runs, "tcp/w8/k64b8/r90")
			if lr != nil && rr != nil && lr.Completed > 0 && rr.Completed > 0 {
				lm := float64(lr.MsgsSent) / float64(lr.Completed)
				rm := float64(rr.MsgsSent) / float64(rr.Completed)
				fmt.Printf("wire cost: leased %.2f msgs/op vs plain %.2f msgs/op (%d local reads, %d grants, %d invalidation rounds)\n",
					lm, rm, lr.LeaseLocalReads, lr.LeaseGrants, lr.LeaseInvalRounds)
				if lm >= rm {
					gates = append(gates, fmt.Sprintf("leased cell sends %.2f msgs/op, not fewer than plain %.2f", lm, rm))
				}
			}
			if lr != nil && lr.LeaseGrants == 0 {
				gates = append(gates, "lease cell never acquired a lease")
			}
		}
	}

	if *stageSanity != "" {
		r := find(rep.Runs, *stageSanity)
		switch {
		case r == nil:
			gates = append(gates, fmt.Sprintf("-stage-sanity cell %q was not run", *stageSanity))
		case len(r.Stages) == 0:
			gates = append(gates, fmt.Sprintf("-stage-sanity: cell %s carries no server stage data (is -trace-sample 0?)", *stageSanity))
		default:
			// Sum the per-message processing stages' medians and hold them
			// under the client-observed p50: a full round trip must cost at
			// least the server work inside it. The whole-round waits (total,
			// quorum, lease) are excluded — each already spans the other
			// stages plus the network, so they are not additive terms.
			sum := 0.0
			var parts []string
			for _, name := range optrace.StageNames() {
				if name == "total" || name == "quorum" || name == "lease" {
					continue
				}
				st, ok := r.Stages[name]
				if !ok || st.Count == 0 {
					continue
				}
				sum += st.P50Us
				parts = append(parts, fmt.Sprintf("%s=%.1f", name, st.P50Us))
			}
			fmt.Printf("stage sanity (%s): server stage medians sum %.1fµs ≤ client p50 %.1fµs (%s)\n",
				r.Name, sum, r.P50us, strings.Join(parts, " "))
			if sum > r.P50us {
				gates = append(gates, fmt.Sprintf("stage sanity: %s server stage medians sum %.1fµs > client p50 %.1fµs", r.Name, sum, r.P50us))
			}
			if len(r.Stages) < 5 {
				gates = append(gates, fmt.Sprintf("stage sanity: %s has only %d stages with samples (want ≥ 5) — trace plumbing is rotting", r.Name, len(r.Stages)))
			}
		}
	}

	if *metricsAddr != "" {
		snap, err := fetchServerTrace(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: -metrics-addr: %v (report not stamped)\n", err)
		} else {
			rep.ServerTrace = snap
		}
	}

	var regressions []string
	if *comparePath != "" {
		var err error
		regressions, err = compare(*comparePath, &rep, *tolerance)
		if err != nil {
			fatal("compare: %v", err)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal("%v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal("%v", err)
		}
		f.Close()
	}
	if len(regressions) > 0 {
		fatal("throughput regressed beyond %.0f%% tolerance: %s",
			*tolerance*100, strings.Join(regressions, ", "))
	}
	if len(gates) > 0 {
		fatal("acceptance gates failed: %s", strings.Join(gates, "; "))
	}
}

// cellName renders a cell's canonical name: mode/window plus a /kKbB
// suffix when the cell is keyed or batched (tcp/w8, tcp/w8/k64b8).
func cellName(mode string, window, keys, batch int) string {
	name := fmt.Sprintf("%s/w%d", mode, window)
	if keys > 1 || batch > 1 {
		name += fmt.Sprintf("/k%db%d", keys, batch)
	}
	return name
}

// dedupe drops repeated cell names when sweeps overlap (e.g. -suite and
// -suite-keys both contain tcp/w8/k64b8), keeping first occurrences.
func dedupe(specs []runSpec) []runSpec {
	seen := make(map[string]bool, len(specs))
	out := specs[:0]
	for _, s := range specs {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	return out
}

// reconfigCtl coordinates a -reconfig-at swap: counts completions across
// every client's OnResult (which run on different event loops), fires the
// coordinator kick exactly once at the threshold, and records the split
// point for pre/post throughput plus the transition error count.
type reconfigCtl struct {
	at         int64
	done       atomic.Int64
	kicked     atomic.Bool
	errs       atomic.Int64
	preElapsed atomic.Int64 // nanoseconds from workload start to the kick
	start      time.Time
	kick       func() // set before the mesh starts, so OnResult sees it
	once       sync.Once
}

func (rc *reconfigCtl) fire() {
	rc.once.Do(func() {
		rc.preElapsed.Store(int64(time.Since(rc.start)))
		rc.kicked.Store(true)
		rc.kick()
	})
}

// runOnce executes one benchmark cell: build the cluster, kick the client
// workloads, wait for every operation to resolve, aggregate into hist
// (Reset first — the caller reuses it across cells).
func runOnce(spec runSpec, hist *histo.Histogram) (runResult, error) {
	n := spec.Rows * spec.Cols
	if spec.Clients < 1 {
		return runResult{}, fmt.Errorf("clients must be ≥ 1")
	}
	if spec.Mode == "gateway" || spec.Mode == "session" {
		return runGateway(spec, hist)
	}
	// "disk" is the tcp transport with every replica on the WAL backend
	// in a throwaway directory; fsyncs are real — that is the point.
	transportMode, disk := spec.Mode, spec.Mode == "disk"
	if disk {
		transportMode = "tcp"
	}
	var diskRoot string
	if disk {
		var err error
		if diskRoot, err = os.MkdirTemp("", "loadgen-wal-"); err != nil {
			return runResult{}, err
		}
		defer os.RemoveAll(diskRoot)
	}
	// Direct modes run each client on a replica node, so the count is
	// bounded by the cluster; gateway mode decouples the two.
	if spec.Clients > n {
		return runResult{}, fmt.Errorf("clients must be ≤ %d in %s mode (use -mode gateway for more clients than nodes)", n, spec.Mode)
	}
	var st rkv.Store
	var rc *reconfigCtl
	var initial, target epoch.Params
	var stores []*epoch.Store
	total := spec.Clients * spec.Ops
	switch {
	case spec.ReconfigAt > 0:
		if spec.Mode != "tcp" {
			return runResult{}, fmt.Errorf("-reconfig-at requires tcp mode")
		}
		var err error
		if initial, err = buildParams(spec.Store, spec.Rows, spec.Cols, n); err != nil {
			return runResult{}, err
		}
		if target, err = buildParams(spec.ReconfigTo, spec.Rows, spec.Cols, n); err != nil {
			return runResult{}, err
		}
		if initial.Equal(target) {
			return runResult{}, fmt.Errorf("-reconfig-to %q is already the initial config", spec.ReconfigTo)
		}
		rc = &reconfigCtl{at: int64(spec.ReconfigAt)}
	case spec.ShiftReads > 0:
		// Mix-shift cells run epoch-versioned so the auto-tuner can (and
		// the hold cell could, but won't) re-shape the cluster. The split
		// controller fires at the shift point — no reconfiguration kick of
		// its own; the tuner drives any swap.
		if spec.Mode != "tcp" {
			return runResult{}, fmt.Errorf("mix-shift cells require tcp mode")
		}
		var err error
		if initial, err = buildParams(spec.Store, spec.Rows, spec.Cols, n); err != nil {
			return runResult{}, err
		}
		rc = &reconfigCtl{at: int64(total / 2)}
	default:
		var err error
		if st, err = buildStore(spec.Store, spec.Rows, spec.Cols); err != nil {
			return runResult{}, err
		}
	}

	var remaining atomic.Int64
	remaining.Store(int64(total))
	done := make(chan struct{})

	// Per-client state, touched only from that node's event loop; merged
	// after the mesh has shut down.
	type clientState struct {
		hist      histo.Histogram
		rhist     histo.Histogram
		whist     histo.Histogram
		completed int
		failed    int
	}
	states := make([]*clientState, spec.Clients)
	handlers := make([]cluster.Handler, n)
	nodes := make([]*rkv.Node, n)
	var closeOnce sync.Once
	for i := 0; i < n; i++ {
		cfg := rkv.Config{
			Store:         st,
			Shards:        spec.Shards,
			Timeout:       spec.Timeout,
			OpDeadline:    spec.OpDeadline,
			ReadWriteback: spec.Writeback,
			Window:        spec.Window,
			Batch:         spec.Batch,
			OpGap:         -1, // load generation: no think time
			TraceSample:   spec.TraceSample,
		}
		if disk {
			cfg.Storage = "disk"
			cfg.DataDir = filepath.Join(diskRoot, fmt.Sprintf("n%02d", i))
		}
		if rc != nil {
			es, err := epoch.NewStore(n, initial)
			if err != nil {
				return runResult{}, err
			}
			cfg.Store, cfg.Epochs = nil, es
			stores = append(stores, es)
		}
		if spec.AutoTune && i == 0 {
			cfg.AutoTune = &tuner.Policy{
				Interval: 100 * time.Millisecond,
				HoldFor:  2,
				MinOps:   64,
			}
		}
		if spec.Lease && i == 0 {
			// Policy-driven grant: the holder waits for its workload window
			// to measure a read-heavy mix (the suite cell runs 90% reads),
			// then acquires. Wall-clock TTL with the member-side slack on
			// top; renewals keep it alive for the whole run.
			cfg.Lease = &lease.Config{
				Shards:  16,
				TTL:     time.Second,
				Check:   100 * time.Millisecond,
				MinOps:  32,
				Acquire: true,
			}
		}
		if i < spec.Clients {
			cs := &clientState{}
			states[i] = cs
			cfg.Ops = buildWorkload(spec, int64(i))
			cfg.OnResult = func(r rkv.Result) {
				cs.hist.RecordDuration(r.At - r.Start)
				if r.Kind == rkv.OpRead {
					cs.rhist.RecordDuration(r.At - r.Start)
				} else {
					cs.whist.RecordDuration(r.At - r.Start)
				}
				if r.Err != nil {
					cs.failed++
				} else {
					cs.completed++
				}
				if rc != nil {
					if r.Err != nil && rc.kicked.Load() {
						rc.errs.Add(1)
					}
					if rc.done.Add(1) == rc.at {
						rc.fire()
					}
				}
				if remaining.Add(-1) == 0 {
					closeOnce.Do(func() { close(done) })
				}
			}
		}
		node, err := rkv.NewNode(cluster.NodeID(i), cfg)
		if err != nil {
			return runResult{}, err
		}
		nodes[i] = node
		handlers[i] = node
	}

	res := runResult{
		Name: spec.Name, Mode: spec.Mode, Window: spec.Window,
		Batch: spec.Batch, Keys: spec.Keys, Zipf: spec.Zipf,
		Clients: spec.Clients, Nodes: n,
	}
	var elapsed time.Duration
	switch transportMode {
	case "tcp":
		mesh, err := transport.NewMesh(handlers)
		if err != nil {
			return runResult{}, err
		}
		if rc != nil {
			rc.kick = func() {}
			if spec.ReconfigAt > 0 {
				coord := mesh.Node(0)
				rc.kick = func() { coord.Kick(0, rkv.ReconfigToken(target)) }
			}
		}
		mesh.Start()
		if spec.AutoTune {
			mesh.Node(0).Kick(0, rkv.TuneToken())
		}
		if spec.Lease {
			mesh.Node(0).Kick(0, rkv.LeaseToken())
		}
		start := time.Now()
		if rc != nil {
			rc.start = start
		}
		for i := 0; i < spec.Clients; i++ {
			mesh.Node(i).Kick(0, nodes[i].StartToken())
		}
		if err := wait(done, spec.RunTimeout); err != nil {
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
		if rc != nil {
			// Let the coordinator finish spreading the final config before
			// tearing the mesh down, so FinalEpoch reports the settled state.
			// An explicit -reconfig-at must land at its target (epoch ≥ 3);
			// mix-shift cells only need a stable (non-joint) config — whether
			// the tuner swapped is the acceptance gate's question, not a run
			// error.
			minEpoch := uint64(3)
			if spec.ReconfigAt == 0 {
				minEpoch = 1
			}
			if err := waitSettled(stores, minEpoch, 10*time.Second); err != nil {
				mesh.Close()
				return runResult{}, err
			}
		}
		stats := mesh.Stats()
		mesh.Close()
		res.MsgsSent, res.BytesOut, res.Flushes = stats.Sent, stats.BytesOut, stats.Flushes
	case "mem":
		mesh := transport.NewMemMesh(handlers)
		start := time.Now()
		for i := 0; i < spec.Clients; i++ {
			mesh.Kick(i, 0, nodes[i].StartToken())
		}
		if err := wait(done, spec.RunTimeout); err != nil {
			mesh.Close()
			return runResult{}, err
		}
		elapsed = time.Since(start)
		mesh.Close()
	default:
		return runResult{}, fmt.Errorf("unknown mode %q", spec.Mode)
	}

	// The mesh is closed: every event loop has exited, so the per-client
	// state is quiescent and safe to merge from here.
	if disk {
		// Release the WAL file handles before the trial's directory goes
		// away; a failed final flush is a real durability error.
		for _, node := range nodes {
			if err := node.Close(); err != nil {
				return runResult{}, err
			}
		}
	}
	hist.Reset()
	var rhist, whist histo.Histogram
	for _, cs := range states {
		hist.Merge(&cs.hist)
		rhist.Merge(&cs.rhist)
		whist.Merge(&cs.whist)
		res.Completed += cs.completed
		res.Failed += cs.failed
	}
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Completed) / elapsed.Seconds()
	}
	us := func(v int64) float64 { return float64(v) / 1e3 }
	res.P50us = us(hist.Quantile(0.50))
	res.P95us = us(hist.Quantile(0.95))
	res.P99us = us(hist.Quantile(0.99))
	res.P999us = us(hist.Quantile(0.999))
	res.MaxUs = us(hist.Max())
	res.MeanUs = hist.Mean() / 1e3
	res.ReadFrac = spec.Reads
	res.ShiftReadFrac = spec.ShiftReads
	res.ReadOps = int(rhist.Count())
	res.WriteOps = int(whist.Count())
	if rhist.Count() > 0 {
		res.ReadP50us = us(rhist.Quantile(0.50))
		res.ReadP99us = us(rhist.Quantile(0.99))
	}
	if whist.Count() > 0 {
		res.WriteP50us = us(whist.Quantile(0.50))
		res.WriteP99us = us(whist.Quantile(0.99))
	}
	if spec.Lease {
		for _, node := range nodes {
			st := node.LeaseStats()
			res.LeaseGrants += st.Grants
			res.LeaseLocalReads += st.LocalReads
			res.LeaseInvalRounds += st.InvalRounds
			res.LeaseExpiries += st.Expiries
		}
	}
	if err := stampTrace(&res, nodes, nil); err != nil {
		return runResult{}, err
	}
	if rc != nil {
		res.ReconfigAt = int(rc.at)
		res.TransitionErrs = int(rc.errs.Load())
		res.FinalEpoch = stores[0].Epoch()
		pre := time.Duration(rc.preElapsed.Load())
		if pre > 0 {
			res.PreOpsPerSec = float64(rc.at) / pre.Seconds()
		}
		if post := elapsed - pre; pre > 0 && post > 0 {
			res.PostOpsPerSec = float64(int64(total)-rc.at) / post.Seconds()
		}
	}
	return res, nil
}

// buildParams maps a -store/-reconfig-to flavor name onto epoch params
// over the dense member set 0..n-1 (the mesh's node IDs).
func buildParams(name string, rows, cols, n int) (epoch.Params, error) {
	flavor, err := epoch.ParseFlavor(name)
	if err != nil {
		return epoch.Params{}, err
	}
	p := epoch.Params{Flavor: flavor, Members: epoch.MemberRange(0, n)}
	switch flavor {
	case epoch.FlavorHGrid, epoch.FlavorHTGrid:
		p.Rows, p.Cols = rows, cols
	case epoch.FlavorHTriang:
		return epoch.Params{}, fmt.Errorf("htriang is not supported by -reconfig-at (needs k(k+1)/2 nodes)")
	}
	return p, nil
}

// waitSettled polls every epoch store until all run a stable (non-joint)
// config at or beyond minEpoch.
func waitSettled(stores []*epoch.Store, minEpoch uint64, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		settled := true
		for _, es := range stores {
			if snap := es.Snapshot(); snap.Joint() || snap.Epoch < minEpoch {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster did not settle on the target config within %v", limit)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stampTrace merges every node's tracer snapshot (plus any extra
// tracers — the gateway tier's) and stamps the nonzero stages into res,
// wire payloads stripped: the artifact explains latency, it is not a
// further merge input. No-op when tracing was off or nothing sampled.
func stampTrace(res *runResult, nodes []*rkv.Node, extra []*optrace.Tracer) error {
	var snap optrace.Snapshot
	first := true
	merge := func(s optrace.Snapshot) error {
		if first {
			snap, first = s, false
			return nil
		}
		return snap.Merge(s)
	}
	for _, node := range nodes {
		if err := merge(node.TraceSnapshot()); err != nil {
			return fmt.Errorf("trace merge: %w", err)
		}
	}
	for _, t := range extra {
		if err := merge(t.Snapshot()); err != nil {
			return fmt.Errorf("trace merge: %w", err)
		}
	}
	if first || snap.Sampled == 0 {
		return nil
	}
	res.TraceSampled = snap.Sampled
	res.Stages = make(map[string]optrace.StageStat, len(snap.Stages))
	for name, st := range snap.Stages {
		if st.Count == 0 {
			continue
		}
		st.Wire = nil
		res.Stages[name] = st
	}
	return nil
}

// fetchServerTrace GETs a running kvd node's -metrics-addr document and
// returns its optrace group — the deployment-side stage snapshot the
// report is stamped with when loadgen drove a live cluster.
func fetchServerTrace(addr string) (*optrace.Snapshot, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	var doc struct {
		Optrace optrace.Snapshot `json:"optrace"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &doc.Optrace, nil
}

// buildWorkload generates a client's deterministic op mix over the
// keyspace: keys drawn uniformly or zipfian (rank 0 hottest), reads drawn
// from the read fraction but forced to writes until the client has written
// that key once (so reads always observe data), values of the configured
// size.
func buildWorkload(spec runSpec, client int64) []rkv.Op {
	rng := rand.New(rand.NewSource(spec.Seed*1000 + client))
	value := func(i int) string {
		b := make([]byte, spec.Value)
		for j := range b {
			b[j] = 'a' + byte((int(client)+i+j)%26)
		}
		return string(b)
	}
	names := make([]string, spec.Keys)
	for i := range names {
		if spec.Keys > 1 {
			names[i] = fmt.Sprintf("k%03d", i)
		}
	}
	pickKey := func() string { return names[0] }
	if spec.Keys > 1 {
		if spec.Zipf > 1 {
			z := rand.NewZipf(rng, spec.Zipf, 1, uint64(spec.Keys-1))
			pickKey = func() string { return names[z.Uint64()] }
		} else {
			pickKey = func() string { return names[rng.Intn(spec.Keys)] }
		}
	}
	written := make(map[string]bool, spec.Keys)
	ops := make([]rkv.Op, 0, spec.Ops)
	for i := 0; i < spec.Ops; i++ {
		readFrac := spec.Reads
		if spec.ShiftReads > 0 && i >= spec.Ops/2 {
			readFrac = spec.ShiftReads
		}
		k := pickKey()
		if written[k] && rng.Float64() < readFrac {
			ops = append(ops, rkv.Op{Kind: rkv.OpRead, Key: k})
		} else {
			written[k] = true
			ops = append(ops, rkv.Op{Kind: rkv.OpWrite, Key: k, Value: value(i)})
		}
	}
	return ops
}

func buildStore(name string, rows, cols int) (rkv.Store, error) {
	switch name {
	case "hgrid":
		return rkv.HGridStore{H: hgrid.Auto(rows, cols)}, nil
	case "htgrid":
		return rkv.HTGridStore{Sys: htgrid.New(hgrid.Auto(rows, cols))}, nil
	case "majority":
		n := rows * cols
		return rkv.NewMajorityStore(n, n/2+1, n/2+1)
	default:
		return nil, fmt.Errorf("unknown store %q", name)
	}
}

func wait(done <-chan struct{}, limit time.Duration) error {
	select {
	case <-done:
		return nil
	case <-time.After(limit):
		return fmt.Errorf("run exceeded -run-timeout %v (cluster stuck?)", limit)
	}
}

func find(runs []runResult, name string) *runResult {
	for i := range runs {
		if runs[i].Name == name {
			return &runs[i]
		}
	}
	return nil
}

func printResult(r runResult) {
	fmt.Printf("%-14s nodes=%d clients=%d window=%d batch=%d keys=%d  ops=%d failed=%d  %8.0f ops/s  p50=%s p95=%s p99=%s p999=%s max=%s\n",
		r.Name, r.Nodes, r.Clients, r.Window, r.Batch, r.Keys, r.Completed, r.Failed, r.OpsPerSec,
		fmtUs(r.P50us), fmtUs(r.P95us), fmtUs(r.P99us), fmtUs(r.P999us), fmtUs(r.MaxUs))
	if r.Mode == "tcp" || r.Mode == "disk" || r.Mode == "gateway" || r.Mode == "session" {
		perFlush := float64(0)
		if r.Flushes > 0 {
			perFlush = float64(r.MsgsSent) / float64(r.Flushes)
		}
		fmt.Printf("%-14s msgs=%d bytes_out=%d flushes=%d (%.1f msgs/flush)\n",
			"", r.MsgsSent, r.BytesOut, r.Flushes, perFlush)
	}
	if r.Mode == "gateway" {
		fmt.Printf("%-14s sessions=%d shed=%d retries=%d\n", "", r.Sessions, r.GwShed, r.GwRetries)
	}
	if r.ReconfigAt > 0 {
		fmt.Printf("%-14s reconfig@%d: pre %.0f ops/s, post %.0f ops/s, transition errs %d, settled epoch %d\n",
			"", r.ReconfigAt, r.PreOpsPerSec, r.PostOpsPerSec, r.TransitionErrs, r.FinalEpoch)
	}
	if r.LeaseGrants > 0 || r.LeaseLocalReads > 0 {
		hit := float64(0)
		if r.ReadOps > 0 {
			hit = 100 * float64(r.LeaseLocalReads) / float64(r.ReadOps)
		}
		fmt.Printf("%-14s lease: grants=%d local_reads=%d (%.1f%% of reads) inval_rounds=%d expiries=%d\n",
			"", r.LeaseGrants, r.LeaseLocalReads, hit, r.LeaseInvalRounds, r.LeaseExpiries)
	}
	if len(r.Stages) > 0 {
		var b strings.Builder
		for _, name := range optrace.StageNames() {
			if st, ok := r.Stages[name]; ok && st.Count > 0 {
				fmt.Fprintf(&b, " %s=%.1f", name, st.P50Us)
			}
		}
		fmt.Printf("%-14s server stage p50s (µs, %d ops sampled):%s\n", "", r.TraceSampled, b.String())
	}
}

func fmtUs(us float64) string {
	d := time.Duration(us * float64(time.Microsecond))
	return d.Round(time.Microsecond).String()
}

// compare prints a benchstat-style old-vs-new table of the current report
// against a committed baseline, matching cells by name, and returns the
// cells whose throughput regressed beyond the tolerance fraction — the CI
// gate's trip wire. Cells absent from the baseline are "new", never
// regressions.
func compare(baselinePath string, cur *report, tolerance float64) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	// Throughput gates across differing CPU budgets are noise, not signal:
	// refuse rather than pass or fail on meaningless numbers. (Baselines
	// predating the fields read as zero and are let through with a warning.)
	if old.CPUs != 0 && (old.CPUs != cur.CPUs || old.GOMAXPROCS != cur.GOMAXPROCS) {
		return nil, fmt.Errorf("baseline ran on cpus=%d gomaxprocs=%d, this run has cpus=%d gomaxprocs=%d — refusing to gate throughput across differing CPU budgets; regenerate the baseline on this machine",
			old.CPUs, old.GOMAXPROCS, cur.CPUs, cur.GOMAXPROCS)
	}
	if old.CPUs == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: baseline %s predates CPU stamping; comparing anyway\n", baselinePath)
	}
	var regressions []string
	var newCells []string
	var noStageData []string
	var b strings.Builder
	fmt.Fprintf(&b, "\n%-14s  %14s  %14s  %8s    %12s  %12s  %8s\n",
		"cell", "old ops/s", "new ops/s", "delta", "old p99", "new p99", "delta")
	for i := range cur.Runs {
		nr := &cur.Runs[i]
		or := find(old.Runs, nr.Name)
		if or == nil {
			fmt.Fprintf(&b, "%-14s  %14s  %14.0f  %8s\n", nr.Name, "-", nr.OpsPerSec, "new")
			newCells = append(newCells, nr.Name)
			continue
		}
		// A throughput delta across differing read/write mixes measures the
		// mix, not the code — refuse rather than gate on it. (Baselines
		// predating mix stamping read as zero and are let through.)
		if or.ReadFrac != 0 && nr.ReadFrac != 0 &&
			(or.ReadFrac != nr.ReadFrac || or.ShiftReadFrac != nr.ShiftReadFrac) {
			return nil, fmt.Errorf("cell %s: baseline ran %.0f%% reads, this run %.0f%% — refusing to gate across differing mixes; regenerate the baseline",
				nr.Name, 100*or.ReadFrac, 100*nr.ReadFrac)
		}
		if len(nr.Stages) > 0 && len(or.Stages) == 0 {
			noStageData = append(noStageData, nr.Name)
		}
		mark := ""
		switch {
		case ratioGated(nr.Name):
			// The gateway pair and the WAN tail cells are judged by their
			// own within-run ratio gates (noise cancels inside one run);
			// their absolute ops/s swings with machine noise run to run, so
			// a cross-run tolerance gate on them would flake, not protect.
			mark = "  (ratio-gated)"
		case or.OpsPerSec > 0 && nr.OpsPerSec < or.OpsPerSec*(1-tolerance):
			mark = "  <-- REGRESSION"
			regressions = append(regressions, nr.Name)
		}
		fmt.Fprintf(&b, "%-14s  %14.0f  %14.0f  %+7.1f%%    %12s  %12s  %+7.1f%%%s\n",
			nr.Name, or.OpsPerSec, nr.OpsPerSec, pct(or.OpsPerSec, nr.OpsPerSec),
			fmtUs(or.P99us), fmtUs(nr.P99us), pct(or.P99us, nr.P99us), mark)
	}
	if old.PipelineSpeedup > 0 && cur.PipelineSpeedup > 0 {
		fmt.Fprintf(&b, "speedup   %19.2fx  %13.2fx\n", old.PipelineSpeedup, cur.PipelineSpeedup)
	}
	fmt.Print(b.String())
	if len(newCells) > 0 {
		// New cells pass by construction — say so loudly instead of letting
		// an un-gated cell masquerade as a protected one.
		fmt.Fprintf(os.Stderr, "loadgen: %d cell(s) absent from baseline %s, not gated: %s — commit a regenerated baseline to gate them\n",
			len(newCells), baselinePath, strings.Join(newCells, ", "))
	}
	if len(noStageData) > 0 {
		// A missing stage breakdown in the baseline is age, not a
		// regression: warn so the baseline gets regenerated, never fail.
		fmt.Fprintf(os.Stderr, "loadgen: baseline %s predates server stage data for: %s — stage breakdowns are informational this run; regenerate the baseline to archive them\n",
			baselinePath, strings.Join(noStageData, ", "))
	}
	return regressions, nil
}

// ratioGated reports whether a cell is covered by a within-run ratio
// gate (gateway efficiency, WAN tail, auto-tuner pair) instead of the
// cross-run throughput tolerance.
func ratioGated(name string) bool {
	return strings.HasPrefix(name, "gw/") || strings.HasPrefix(name, "sess/") || strings.HasPrefix(name, "wan3/") ||
		strings.HasSuffix(name, "/tune") || strings.HasSuffix(name, "/hold") ||
		strings.HasSuffix(name, "/lease") || strings.HasSuffix(name, "/r90")
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
