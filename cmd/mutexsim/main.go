// Command mutexsim runs quorum-based distributed mutual exclusion on the
// simulated cluster and reports throughput, message cost and latency —
// the protocol-level comparison the paper's systems are built for.
//
// Usage:
//
//	mutexsim -system htriang -k 5 -requests 3 -crash 2 -seed 7
//	mutexsim -system htgrid -rows 3 -cols 3 -nemesis crash-storm -seed 7
//
// Supported -system values: htriang (-k), htgrid (-rows -cols), hgrid
// (-rows -cols), majority (-n), cwlog (-n).
//
// -nemesis replays a scripted fault schedule (crash-storm,
// rolling-restart, link-flap, minority-partition, churn) into the run
// and checks the recorded hold intervals for overlap; it replaces the
// static -crash fault model, and crashes mid-hold truncate the victim's
// interval instead of tripping the naive holding flag.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hquorum/internal/cluster"
	"hquorum/internal/cwlog"
	"hquorum/internal/dmutex"
	"hquorum/internal/hgrid"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/majority"
	"hquorum/internal/nemesis"
	"hquorum/internal/quorum"
)

func main() {
	system := flag.String("system", "htriang", "quorum construction: htriang|htgrid|hgrid|majority|cwlog")
	k := flag.Int("k", 5, "triangle rows (htriang)")
	rows := flag.Int("rows", 4, "grid rows (htgrid/hgrid)")
	cols := flag.Int("cols", 4, "grid cols (htgrid/hgrid)")
	n := flag.Int("n", 15, "universe size (majority/cwlog)")
	requests := flag.Int("requests", 3, "critical sections per node")
	crash := flag.Int("crash", 0, "number of nodes to crash before the run")
	seed := flag.Int64("seed", 1, "simulation seed")
	hold := flag.Duration("hold", 2*time.Millisecond, "critical-section hold time")
	think := flag.Duration("think", 5*time.Millisecond, "think time between requests")
	nemesisName := flag.String("nemesis", "", "replay a fault schedule: crash-storm|rolling-restart|link-flap|minority-partition|churn (replaces -crash; workload pacing is derived from the schedule)")
	flag.Parse()

	var sys quorum.System
	switch *system {
	case "htriang":
		sys = htriang.New(*k)
	case "htgrid":
		sys = htgrid.Auto(*rows, *cols)
	case "hgrid":
		sys = hgrid.NewRW(hgrid.Auto(*rows, *cols))
	case "majority":
		sys = majority.New(*n)
	case "cwlog":
		s, err := cwlog.Log(*n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys = s
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	size := sys.Universe()
	if *nemesisName != "" {
		if *crash > 0 {
			fmt.Fprintln(os.Stderr, "-nemesis and -crash are mutually exclusive")
			os.Exit(2)
		}
		runNemesis(sys, *nemesisName, *seed, *requests)
		return
	}

	net := cluster.New(cluster.WithSeed(*seed), cluster.WithLatency(time.Millisecond, 8*time.Millisecond))
	if *crash >= size {
		fmt.Fprintln(os.Stderr, "cannot crash the whole cluster")
		os.Exit(2)
	}

	// Crash a random subset; requesters are the survivors.
	rng := rand.New(rand.NewSource(*seed))
	perm := rng.Perm(size)
	crashed := map[cluster.NodeID]bool{}
	for _, idx := range perm[:*crash] {
		crashed[cluster.NodeID(idx)] = true
	}

	holding := false
	entries := 0
	var nodes []*dmutex.Node
	for i := 0; i < size; i++ {
		id := cluster.NodeID(i)
		wl := dmutex.Workload{Count: *requests, Hold: *hold, Think: *think}
		if crashed[id] {
			wl = dmutex.Workload{}
		}
		node, err := dmutex.NewNode(id, dmutex.Config{
			System:   sys,
			Workload: wl,
			OnAcquire: func(id cluster.NodeID, at time.Duration) {
				if holding {
					fmt.Println("FATAL: mutual exclusion violated")
					os.Exit(1)
				}
				holding = true
				entries++
			},
			OnRelease: func(id cluster.NodeID, at time.Duration) { holding = false },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := net.AddNode(id, node); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nodes = append(nodes, node)
	}
	for _, node := range nodes {
		if err := node.Start(net); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for id := range crashed {
		net.Crash(id)
	}

	net.Run(10 * time.Minute)

	var totalWait time.Duration
	retries, stuck := 0, 0
	for i, node := range nodes {
		totalWait += node.WaitTotal
		retries += node.Retries
		if !crashed[cluster.NodeID(i)] && !node.Done() {
			stuck++
		}
	}
	fmt.Printf("system:            %s (%d nodes, quorums %d..%d)\n",
		sys.Name(), size, sys.MinQuorumSize(), sys.MaxQuorumSize())
	fmt.Printf("crashed nodes:     %d\n", *crash)
	fmt.Printf("critical sections: %d\n", entries)
	fmt.Printf("virtual time:      %v\n", net.Now())
	fmt.Printf("messages:          %d (%.1f per entry)\n", net.Messages(),
		float64(net.Messages())/float64(max(entries, 1)))
	fmt.Printf("retries:           %d\n", retries)
	fmt.Printf("avg wait:          %v\n", totalWait/time.Duration(max(entries, 1)))
	if stuck > 0 {
		fmt.Printf("STUCK NODES:       %d\n", stuck)
		os.Exit(1)
	}
}

// runNemesis replays a scripted fault schedule and checks the recorded
// hold history for mutual-exclusion violations.
func runNemesis(sys quorum.System, name string, seed int64, requests int) {
	var sched nemesis.Schedule
	found := false
	for _, s := range nemesis.DefaultSchedules(sys.Universe()) {
		if s.Name == name {
			sched, found = s, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown nemesis schedule %q\n", name)
		os.Exit(2)
	}
	res, err := nemesis.RunMutex(nemesis.MutexRun{
		System:   sys,
		Seed:     seed,
		Schedule: sched,
		Count:    requests,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("system:            %s (%d nodes, quorums %d..%d)\n",
		sys.Name(), sys.Universe(), sys.MinQuorumSize(), sys.MaxQuorumSize())
	fmt.Printf("nemesis:           %s (%d actions, horizon %v)\n", sched.Name, len(sched.Actions), sched.Horizon)
	fmt.Printf("critical sections: %d\n", res.Entries)
	fmt.Printf("failed acquires:   %d\n", res.Failures)
	fmt.Printf("hold intervals:    %d\n", len(res.Intervals))
	fmt.Printf("messages:          %d (%d dropped)\n", res.Messages, res.Dropped)
	if len(res.Violations) > 0 {
		fmt.Printf("FATAL: mutual exclusion violated: %v\n", res.Violations[0])
		os.Exit(1)
	}
	fmt.Println("mutual exclusion:  ok")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
