// Command paper-tables regenerates every table and figure of "Revisiting
// Hierarchical Quorum Systems" (Preguiça & Martins, ICDCS 2001), printing
// each measured value next to the published one (in parentheses).
//
// Usage:
//
//	paper-tables [-table N] [-quick]
//
// Without -table it regenerates everything. -quick replaces the exact
// 2²⁵..2²⁸ subset enumerations of Table 3's h-T-grid(25), Paths(25) and
// Y(28) columns with Monte Carlo estimates (the exact run takes on the
// order of a minute per column on one core).
package main

import (
	"flag"
	"fmt"
	"os"

	"hquorum/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-5); 0 = everything including figures")
	quick := flag.Bool("quick", false, "Monte Carlo for the expensive exact enumerations of Table 3")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	all := *table == 0
	if all || *table == 1 {
		fmt.Println(experiments.Table1().Render())
	}
	if all || *table == 2 {
		fmt.Println(experiments.Table2().Render())
	}
	if all || *table == 3 {
		if !*quick {
			fmt.Println("(Table 3 exact mode: enumerating up to 2^28 subsets; use -quick to sample instead)")
		}
		fmt.Println(experiments.Table3(*quick).Render())
	}
	if all || *table == 4 {
		fmt.Println(experiments.RenderTable4(experiments.Table4()))
	}
	if all || *table == 5 {
		fmt.Println(experiments.RenderTable5(experiments.Table5()))
	}
	if all {
		fmt.Println(experiments.Figure1())
		fmt.Println(experiments.Figure2())
	}
}
