// Command paper-tables regenerates every table and figure of "Revisiting
// Hierarchical Quorum Systems" (Preguiça & Martins, ICDCS 2001), printing
// each measured value next to the published one (in parentheses).
//
// Usage:
//
//	paper-tables [-table N] [-quick] [-progress] [-cache-dir DIR]
//
// Without -table it regenerates everything. -quick replaces the exact
// 2²⁵..2²⁸ subset enumerations of Table 3's h-T-grid(25), Paths(25) and
// Y(28) columns with Monte Carlo estimates (the exact run takes on the
// order of a minute per column on one core). -progress prints live sweep
// progress (blocks done / total with elapsed time) during the big exact
// enumerations. -cache-dir persists transversal counts as JSON under DIR,
// so repeated exact runs are pay-once.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hquorum/internal/analysis"
	"hquorum/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-5); 0 = everything including figures")
	quick := flag.Bool("quick", false, "Monte Carlo for the expensive exact enumerations of Table 3")
	progress := flag.Bool("progress", false, "print live enumeration progress to stderr")
	cacheDir := flag.String("cache-dir", "", "persist transversal counts under this directory (pay-once exact sweeps)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *cacheDir != "" {
		analysis.SetDiskCacheDir(*cacheDir)
	}
	if *progress {
		analysis.SetProgress(func(done, total uint64, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d blocks (%.0f%%) %s  ",
				done, total, 100*float64(done)/float64(total), elapsed.Round(time.Second))
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	all := *table == 0
	if all || *table == 1 {
		fmt.Println(experiments.Table1().Render())
	}
	if all || *table == 2 {
		fmt.Println(experiments.Table2().Render())
	}
	if all || *table == 3 {
		if !*quick {
			fmt.Println("(Table 3 exact mode: enumerating up to 2^28 subsets; use -quick to sample instead)")
		}
		fmt.Println(experiments.Table3(*quick).Render())
	}
	if all || *table == 4 {
		fmt.Println(experiments.RenderTable4(experiments.Table4()))
	}
	if all || *table == 5 {
		fmt.Println(experiments.RenderTable5(experiments.Table5()))
	}
	if all {
		fmt.Println(experiments.Figure1())
		fmt.Println(experiments.Figure2())
	}
}
