module hquorum

go 1.22
