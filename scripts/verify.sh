#!/bin/sh
# verify.sh — the tier-1 gate (see ROADMAP.md): build everything, vet
# everything, run the full test suite, and run the analysis package —
# the only package with intentional shared mutable state (memo cache,
# progress hook, work-stealing counters) — under the race detector.
set -eux
cd "$(dirname "$0")/.."
go build ./...
go vet ./...
go test ./...
go test -race ./internal/analysis/...
# The protocol and chaos layers share state with test harnesses
# (recorders, result slices) and the transport is genuinely concurrent:
# run them under the race detector too. rkv's sharded replica store and
# batched rounds (shards.go / batch_test.go) are exercised from multiple
# transport reader goroutines via the fast path, so the rkv and transport
# entries here are load-bearing for the multi-key engine. The epoch store
# is read on replica fast paths while coordinators install configs, so it
# races under real concurrency too.
go test -race ./internal/epoch/... ./internal/dmutex/... ./internal/rkv/... ./internal/transport/... ./internal/nemesis/... ./internal/history/...
# The live-path engine's codec and histogram are shared by concurrent
# transport readers/writers and per-worker recorders: race them too.
go test -race ./internal/codec/... ./internal/histo/...
# The op tracer is touched from every hot goroutine at once: transport
# readers sample and stamp, writers stamp encode/send, event loops fold
# completed records into the shared histograms, and metrics endpoints
# snapshot concurrently. Race the whole tracing layer.
go test -race ./internal/optrace/...
# The gateway tier is concurrency-dense by construction: per-connection
# reader/writer goroutines, a shared dispatcher, pooled op records whose
# completion races a watchdog timer, and clients whose pipelined Do
# calls coalesce onto one writer. Race it.
go test -race ./internal/gateway/...
# The WAL's group committer is one leader flushing for many concurrent
# appenders (mutex+cond coalescing), and the replica's disk backend
# appends from multiple fast-path reader goroutines under shard locks:
# race the whole durability layer.
go test -race ./internal/wal/...
# The tuner's profiler window is written from transport reader goroutines
# (every finished op observes into it) while metrics endpoints and the
# tune loop snapshot it: race the auto-tuning layer.
go test -race ./internal/tuner/...
# The lease holder's shard mask is published through an atomic that
# gateway sessions read off-loop when routing reads, and the lease
# counters are sampled by metrics endpoints while the event loop
# mutates holder state: race the read-lease layer.
go test -race ./internal/lease/...
