#!/bin/sh
# bench_live.sh — run the live-path throughput suite and write the report
# to BENCH_live.json (in the repo root, or $1 if given).
#
# The suite measures the replicated register end to end with closed-loop
# clients on three cells:
#
#   tcp/w1  loopback-TCP mesh, one op in flight   (the classic client)
#   tcp/w8  loopback-TCP mesh, window of 8        (pipelined)
#   mem/w8  in-process channels, window of 8      (no-syscall ceiling)
#
# and reports ops/sec plus p50/p95/p99/p999 latency from the HDR-style
# histogram, per-cell transport counters (messages, bytes, flushes — the
# msgs/flush ratio is the coalescing win), and the headline
# pipeline_speedup = tcp/w8 over tcp/w1, which the acceptance gate
# requires to be >= 3x.
#
# The run is compared against the committed pre-change snapshot
# scripts/BENCH_live_baseline.json (benchstat-style old/new/delta table).
# Refresh the baseline by copying a trusted BENCH_live.json over it.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_live.json}"
go build -o /tmp/hquorum-loadgen ./cmd/loadgen
if [ -f scripts/BENCH_live_baseline.json ]; then
	/tmp/hquorum-loadgen -suite -json "$out" -compare scripts/BENCH_live_baseline.json
else
	/tmp/hquorum-loadgen -suite -json "$out"
fi
echo "wrote $out" >&2
