#!/bin/sh
# bench_live.sh — run the live-path throughput suite and write the report
# to BENCH_live.json (in the repo root, or $1 if given).
#
# The suite measures the replicated store end to end with closed-loop
# clients on the headline cells
#
#   tcp/w1         loopback-TCP mesh, one op in flight      (classic client)
#   tcp/w8         loopback-TCP mesh, window of 8           (pipelined)
#   tcp/w8/k64b8   window 8 over 64 keys, 8 ops per quorum
#                  round                                    (batched multi-key)
#   mem/w8         in-process channels, window of 8         (no-syscall ceiling)
#   mem/w8/k64b8   batched multi-key at the mem ceiling
#   tcp/w8/k64b8/disk  the batched cell with every replica
#                  on the durable WAL backend, real fsyncs  (group commit
#                  amortizes durability: one fsync per quorum round)
#   tcp/w8/rc      window 8 with a live majority→h-T-grid
#                  reconfiguration a quarter of the way in  (steady state
#                  after the swap; the cell also reports pre/post split
#                  throughput and the transition error count)
#   tcp/w8/k64b8/tune  the batched cell with -auto-tune on node 0 and a
#                  mid-run 50%→95% read shift: the tuner must drive a
#                  live swap off the measured mix (zero transition
#                  errors) and beat tcp/w8/k64b8/hold — the same shifted
#                  workload pinned to symmetric majority — by >= 1.3x
#                  post-shift throughput with fewer msgs/op (the
#                  asymmetric-read-quorum acceptance gates)
#   tcp/w8/k64b8/lease the 90%-read workload with per-shard read leases
#                  on the client node: once the workload window measures
#                  read-heavy the holder serves its reads locally with
#                  zero messages. Gated against tcp/w8/k64b8/r90 — the
#                  identical mix on the plain quorum path — at >= 2x
#                  throughput AND strictly fewer msgs/op (lease_speedup)
#
# plus the per-batch-size sweep tcp/w8/k64b{1,2,4,8,16} and the
# per-key-count sweep tcp/w8/k{1,4,16,64,256}b8, the gateway efficiency
# pair (sess/w8/k64b8/c16x8 vs gw/w8/k64b8/c16x8: the same 128
# closed-loop client streams submitted in-process vs multiplexed through
# the gateway tier, best-of-5 interleaved trials each) and the 3-region
# WAN tail cells wan3/{majority,hgrid,htgrid}/c1000 (1000 gateway
# clients, zipf-skewed keys, 200µs intra-region / 10ms cross-region
# links, latency-aware grid placement), and reports ops/sec with
# p50/p95/p99/p999 latency from the HDR-style histogram, per-cell
# transport counters (messages, bytes, flushes — the msgs/flush ratio is
# the coalescing win), per-cell server-side stage breakdowns (op tracing
# at the default 1-in-64 sampling: queue/decode/lock/fsync/encode/send
# medians explaining where the microseconds went inside the replicas,
# sanity-gated on the headline batched cell), and the headline ratios:
#
#   pipeline_speedup    tcp/w8 over tcp/w1        (acceptance gate: >= 3x)
#   batch_speedup       tcp/w8/k64b8 over tcp/w8  (acceptance gate: >= 2x)
#   gateway_efficiency  gw cell over sess cell    (acceptance gate: >= 0.7x)
#   lease_speedup       lease cell over r90 cell  (acceptance gate: >= 2x,
#                       plus strictly fewer msgs/op)
#   wan p99 tail        min(hgrid, htgrid) p99 < majority p99 at 1000
#                       clients on the 3-region topology (acceptance gate)
#
# The run is compared against the committed pre-change snapshot
# scripts/BENCH_live_baseline.json (benchstat-style old/new/delta table)
# and THE SCRIPT EXITS NONZERO if any cell's throughput regressed more
# than the tolerance (override with TOLERANCE=0.15 or whatever
# fraction), so CI can use it as a perf gate. The committed baseline is
# a conservative floor (per-cell minimum over several healthy runs) and
# the default tolerance is 25%: on a shared 1-CPU box individual cells
# swing ±20% run to run even as best-of-3, so a tighter default gates
# machine noise, not code. Order-of-magnitude collapses — the failure
# mode this gate exists for — still trip it instantly. The
# within-run ratio gates (pipeline, batch, gateway efficiency, WAN
# tails) stay precise because machine speed cancels inside one run.
# Refresh the baseline by min-merging trusted BENCH_live.json runs.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_live.json}"
tol="${TOLERANCE:-0.25}"
# 8000 ops/client: batched cells push >200k ops/s, so short runs would
# measure scheduler jitter, not the protocol.
ops="${OPS:-8000}"
go build -o /tmp/hquorum-loadgen ./cmd/loadgen
# -stage-sanity: every cell's result is stamped with the server-side
# stage breakdown (op tracing at the default 1-in-64 sampling); the
# headline batched cell must show >= 5 stages with samples and the sum
# of its server stage medians must fit inside the client-observed p50 —
# a physically-necessary bound that trips if the trace plumbing rots
# (double stamps, leaked records, stages folding garbage).
if [ -f scripts/BENCH_live_baseline.json ]; then
	/tmp/hquorum-loadgen -suite -suite-batch -suite-keys -suite-gw -suite-wan -suite-tune -suite-lease -ops "$ops" -json "$out" \
		-stage-sanity tcp/w8/k64b8 \
		-compare scripts/BENCH_live_baseline.json -tolerance "$tol"
else
	/tmp/hquorum-loadgen -suite -suite-batch -suite-keys -suite-gw -suite-wan -suite-tune -suite-lease -ops "$ops" -json "$out" \
		-stage-sanity tcp/w8/k64b8
fi
echo "wrote $out" >&2

# Metrics snapshot: boot a real 2×2 kvd cluster on loopback with read
# leases and the metrics endpoint on replica 0, drive one write+read
# through replica 3 in client mode, and archive /metrics next to the
# throughput report — the ops-facing counters (transport, pick cache,
# workload window, lease grants/renewals) for the exact binary the
# suite above measured.
msnap="${out%.json}_metrics.json"
pdir="$(mktemp -d)"
cleanup() {
	for f in "$pdir"/*.pid; do
		[ -f "$f" ] && kill "$(cat "$f")" 2>/dev/null || true
	done
	rm -rf "$pdir"
}
trap cleanup EXIT
cat >"$pdir/peers.txt" <<'EOF'
0 127.0.0.1:7461
1 127.0.0.1:7462
2 127.0.0.1:7463
3 127.0.0.1:7464
EOF
go build -o /tmp/hquorum-kvd ./cmd/kvd
for i in 1 2; do
	/tmp/hquorum-kvd -id "$i" -peers "$pdir/peers.txt" -rows 2 -cols 2 &
	echo $! >"$pdir/$i.pid"
done
# Replica 0 holds the leases: -lease-min-read-frac=-1 grants regardless
# of its (idle) measured mix, so the snapshot shows live lease counters.
# Grant waves are all-ack over every peer, so nothing activates until
# replica 3 is up AND idle: while the client below sits out its boot
# write quarantine its parked write nacks every grant wave (writes win
# ties with acquisition by design). The short -attempt-timeout is wave
# retry patience: a wave lost to replica 3's restart (the lazy-redial
# transport eats one send per dead connection) aborts and retries fast.
# -trace-sample 1 traces every op: the probe workload below is two ops,
# so the archived snapshot's optrace group must not sample them away.
/tmp/hquorum-kvd -id 0 -peers "$pdir/peers.txt" -rows 2 -cols 2 -attempt-timeout 300ms \
	-lease -lease-ttl 1s -lease-min-read-frac=-1 -trace-sample 1 -metrics-addr 127.0.0.1:7460 &
echo $! >"$pdir/0.pid"
sleep 1
# Replica 3 doubles as the client for one write+read (-lease-ttl matches
# the holder's so its boot quarantine covers the holder's TTL)...
/tmp/hquorum-kvd -id 3 -peers "$pdir/peers.txt" -rows 2 -cols 2 -lease-ttl 1s \
	-key bench:probe -write hello -then-read -timeout 30s
# ...then rejoins as a steady replica so the whole universe is up and
# idle while replica 0 acquires and renews its leases.
/tmp/hquorum-kvd -id 3 -peers "$pdir/peers.txt" -rows 2 -cols 2 &
echo $! >"$pdir/3.pid"
sleep 3
curl -s --retry 3 --max-time 10 http://127.0.0.1:7460/metrics >"$msnap"
echo "wrote $msnap" >&2

# Human-readable stage table for the same snapshot: what an operator
# sees from `quorumctl metrics`, archived next to the raw JSON.
stxt="${out%.json}_stages.txt"
go build -o /tmp/hquorum-quorumctl ./cmd/quorumctl
/tmp/hquorum-quorumctl metrics 127.0.0.1:7460 >"$stxt"
echo "wrote $stxt" >&2
