#!/bin/sh
# chaos.sh — the chaos gate: sweep the replicated register (h-grid and
# h-T-grid write quorums) and the distributed lock across pinned seeds
# under the standard nemesis schedules (crash storm, rolling restart,
# link flap, minority partition, churn, column cut), and require
#
#   1. zero safety violations (linearizability and mutual exclusion), and
#   2. a byte-identical summary across two back-to-back runs — the sweep
#      is a deterministic regression artifact, not flaky noise.
#
# 200 seeds x 37 (case, schedule) cells = 7400 simulated runs — including
# a pipelined register cell (window=4, concurrent ops per node), a
# multi-key batched cell (8 keys, 4 ops per quorum round, checked for
# per-key linearizability), four durable cells where every node runs
# the disk WAL backend and restarts recover state by log replay, and an
# auto-tune cell whose mid-run 50%→95% read shift makes node 0's workload
# tuner reconfigure the cluster live under a crash storm; the whole gate
# takes a few seconds of wall clock.
set -eux
cd "$(dirname "$0")/.."
out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT
go build -o "$out/chaos" ./cmd/chaos
"$out/chaos" -seeds 200 >"$out/sweep.1"
"$out/chaos" -seeds 200 >"$out/sweep.2"
diff "$out/sweep.1" "$out/sweep.2"
cat "$out/sweep.1"
