#!/bin/sh
# bench.sh — run the sweep-engine benchmark suite and write the raw
# `go test -json` event stream to BENCH_sweep.json (in the repo root, or
# $1 if given). Compare against the committed pre-change snapshot
# scripts/BENCH_sweep_baseline.json, e.g. with benchstat after extracting
# the Output lines:
#
#   jq -r 'select(.Action=="output").Output' scripts/BENCH_sweep_baseline.json > old.txt
#   jq -r 'select(.Action=="output").Output' BENCH_sweep.json > new.txt
#   benchstat old.txt new.txt
#
# The pattern pins the benchmarks that exercise the sweep engine: the
# table regenerations that feed the acceptance criteria (Table 2 memo
# cache, Table 3 quick mode), the availability predicates with their word
# fast paths, and the exact enumerator.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_sweep.json}"
pattern='^(BenchmarkTable2|BenchmarkTable3|BenchmarkAvailabilityHTriang|BenchmarkAvailabilityHTGrid|BenchmarkAvailableWordY|BenchmarkTransversalCountsHTriang15)$'
go test -json -run '^$' -bench "$pattern" -benchmem -count=5 . > "$out"
echo "wrote $out" >&2
