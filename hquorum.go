// Package hquorum is a library of hierarchical quorum systems, faithfully
// reproducing "Revisiting Hierarchical Quorum Systems" (Preguiça &
// Martins, ICDCS 2001) together with every baseline construction the paper
// evaluates, the analysis machinery behind its tables, and the distributed
// coordination protocols quorum systems exist to serve.
//
// # Constructions
//
// The paper's two contributions:
//
//   - NewHTGrid: the hierarchical T-grid (§4) — a full-line plus a partial
//     row-cover, shrinking h-grid quorums from 2√n−1 to √n..2√n−1.
//   - NewHTriang: the hierarchical triangle (§5) — constant quorum size
//     ≈ √(2n) with almost-optimal load √2/√n.
//
// The baselines: NewMajority / NewTieBreakMajority (Gifford voting),
// NewHQS (Kumar's hierarchical quorum consensus), NewCWlog (Peleg–Wool
// crumbling walls), NewHGrid (Kumar–Cheung hierarchical grid), NewPaths
// (Naor–Wool planar paths) and NewY (the game-of-Y system).
//
// Every construction implements the System interface: an availability
// predicate for exact failure-probability analysis, and a quorum picker for
// driving protocols. FailureProbabilities computes exact Fₚ values by
// subset enumeration (Proposition 3.1); packages under internal/ expose
// construction-specific closed forms and the strategies of §4.3 and §5.
//
// # Protocols
//
// The cluster/dmutex/rkv layers (re-exported here as aliases) provide a
// deterministic discrete-event cluster simulation, Maekawa-style
// distributed mutual exclusion over any System, and the h-grid's
// replicated register with read / blind-write / read-write operations.
package hquorum

import (
	"math/rand"

	"hquorum/internal/analysis"
	"hquorum/internal/bitset"
	"hquorum/internal/cwlog"
	"hquorum/internal/hgrid"
	"hquorum/internal/hqs"
	"hquorum/internal/htgrid"
	"hquorum/internal/htriang"
	"hquorum/internal/loadopt"
	"hquorum/internal/majority"
	"hquorum/internal/paths"
	"hquorum/internal/quorum"
	"hquorum/internal/ysys"
)

// Core abstractions.
type (
	// System is a quorum system: an availability predicate plus a quorum
	// picker over a universe of n nodes (see internal/quorum).
	System = quorum.System
	// Set is a set of node indices.
	Set = bitset.Set
	// Coterie is an explicit list of quorums.
	Coterie = quorum.Coterie
)

// ErrNoQuorum is returned by System.Pick when the live set contains no
// quorum.
var ErrNoQuorum = quorum.ErrNoQuorum

// ErrDegraded is returned by protocol operations that miss their deadline
// while a quorum still exists among trusted nodes.
var ErrDegraded = quorum.ErrDegraded

// NewSet returns an empty node set of capacity n.
func NewSet(n int) Set { return bitset.New(n) }

// AllNodes returns the full node set {0..n-1}.
func AllNodes(n int) Set { return bitset.Universe(n) }

// --- The paper's contributions ---

// HTGrid is the hierarchical T-grid quorum system (§4).
type HTGrid = htgrid.System

// NewHTGrid returns the h-T-grid over the paper's standard hierarchy for a
// rows×cols process grid ("logical grids of size 2×2 whenever possible").
func NewHTGrid(rows, cols int) *HTGrid { return htgrid.Auto(rows, cols) }

// HTriang is the hierarchical triangle quorum system (§5).
type HTriang = htriang.System

// NewHTriang returns the h-triang over a triangle with k rows
// (n = k(k+1)/2 processes); every quorum has exactly k elements.
func NewHTriang(k int) *HTriang { return htriang.New(k) }

// --- Baselines ---

// NewMajority returns Gifford's majority system over n nodes.
func NewMajority(n int) System { return majority.New(n) }

// NewTieBreakMajority returns the even-universe majority variant where one
// node holds two votes (the paper's "Majority (28)").
func NewTieBreakMajority(n int) System { return majority.NewTieBreak(n) }

// NewHQS returns Kumar's hierarchical quorum consensus as a complete
// degree-ary tree of the given depth (NewHQS(3, 3) is the paper's 27-node
// system).
func NewHQS(levels, degree int) System { return hqs.Uniform(levels, degree) }

// NewGroupedHQS returns the two-level HQS of groups×size leaves
// (NewGroupedHQS(5, 3) is the paper's 15-node system).
func NewGroupedHQS(groups, size int) System { return hqs.Grouped(groups, size) }

// NewCWlog returns the Peleg–Wool CWlog crumbling wall over n nodes.
func NewCWlog(n int) (System, error) { return cwlog.Log(n) }

// NewHGrid returns the Kumar–Cheung hierarchical grid's read-write quorum
// system over a rows×cols process grid.
func NewHGrid(rows, cols int) System { return hgrid.NewRW(hgrid.Auto(rows, cols)) }

// NewFlatGrid returns the single-level grid protocol's read-write system.
func NewFlatGrid(rows, cols int) System { return hgrid.NewRW(hgrid.Flat(rows, cols)) }

// NewPaths returns the Naor–Wool Paths system on the centered ℓ-grid
// (n = 2ℓ²+2ℓ+1).
func NewPaths(ell int) System { return paths.New(ell) }

// NewY returns the game-of-Y quorum system on a triangular board with k
// rows (n = k(k+1)/2).
func NewY(k int) System { return ysys.New(k) }

// --- Analysis ---

// FailureProbabilities computes the exact failure probability of sys at
// each crash probability in ps, by full subset enumeration (Proposition
// 3.1). The universe must not exceed 30 nodes; use EstimateFailure beyond
// that.
func FailureProbabilities(sys System, ps []float64) []float64 {
	return analysis.FailureAt(sys, ps)
}

// EstimateFailure estimates the failure probability of sys at crash
// probability p by Monte Carlo sampling, returning the estimate and its
// standard error.
func EstimateFailure(sys System, p float64, samples int, rng *rand.Rand) (estimate, stderr float64) {
	res := analysis.MonteCarloFailure(sys, p, samples, rng)
	return res.Estimate, res.StdErr
}

// LoadLowerBound returns Proposition 3.3's bound max(c/n, 1/c) on the
// system load.
func LoadLowerBound(sys System) float64 {
	return loadopt.LowerBound(sys.MinQuorumSize(), sys.Universe())
}

// MeasureLoad estimates the average quorum size and the induced load of
// sys.Pick over the fully-live universe.
func MeasureLoad(sys System, rng *rand.Rand, samples int) (avgQuorumSize, load float64, err error) {
	res, err := loadopt.MeasureSystem(sys, rng, samples)
	return res.AvgQuorumSize, res.Load, err
}

// Validate checks the intersection property of an enumerable system by
// flattening it into an explicit coterie. Intended for small universes.
func Validate(sys System) error {
	c, err := quorum.FromSystem(sys)
	if err != nil {
		return err
	}
	return c.Validate()
}
