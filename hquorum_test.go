package hquorum

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestConstructorsProduceValidSystems(t *testing.T) {
	cw, err := NewCWlog(14)
	if err != nil {
		t.Fatal(err)
	}
	systems := []System{
		NewMajority(9),
		NewTieBreakMajority(8),
		NewGroupedHQS(3, 3),
		cw,
		NewHGrid(3, 3),
		NewFlatGrid(3, 3),
		NewHTGrid(4, 4),
		NewHTriang(5),
	}
	for _, sys := range systems {
		if err := Validate(sys); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
}

func TestFacadeFailureProbabilities(t *testing.T) {
	// Spot-check Table 1 through the facade.
	fs := FailureProbabilities(NewHTGrid(4, 4), []float64{0.1})
	if math.Abs(fs[0]-0.005361) > 1e-5 {
		t.Fatalf("h-T-grid(4x4) F(0.1) = %v", fs[0])
	}
	// h-triang(5) from Table 2.
	fs = FailureProbabilities(NewHTriang(5), []float64{0.1})
	if math.Abs(fs[0]-0.000677) > 1e-5 {
		t.Fatalf("h-triang(5) F(0.1) = %v", fs[0])
	}
}

func TestEstimateAgreesWithExact(t *testing.T) {
	sys := NewHTriang(5)
	exact := FailureProbabilities(sys, []float64{0.3})[0]
	est, stderr := EstimateFailure(sys, 0.3, 40000, rand.New(rand.NewSource(1)))
	if math.Abs(est-exact) > 5*stderr+1e-3 {
		t.Fatalf("estimate %.5f±%.5f vs exact %.5f", est, stderr, exact)
	}
}

func TestLoadHelpers(t *testing.T) {
	sys := NewHTriang(5)
	if lb := LoadLowerBound(sys); math.Abs(lb-1.0/3) > 1e-12 {
		t.Fatalf("lower bound %v, want 1/3", lb)
	}
	avg, load, err := MeasureLoad(sys, rand.New(rand.NewSource(2)), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-5) > 1e-9 {
		t.Fatalf("avg quorum size %v, want 5", avg)
	}
	if load < 1.0/3-1e-9 {
		t.Fatalf("measured load %v below the optimum", load)
	}
}

func TestSetHelpers(t *testing.T) {
	s := NewSet(10)
	s.Add(3)
	if !s.Contains(3) || s.Count() != 1 {
		t.Fatal("set helpers broken")
	}
	if AllNodes(10).Count() != 10 {
		t.Fatal("AllNodes broken")
	}
}

// TestEndToEndMutex exercises the full public stack: a quorum system, the
// simulated cluster and the mutual-exclusion protocol.
func TestEndToEndMutex(t *testing.T) {
	net := NewNetwork(WithSeed(42), WithLatency(time.Millisecond, 5*time.Millisecond))
	sys := NewHTriang(4)
	holding := false
	var nodes []*MutexNode
	for i := 0; i < sys.Universe(); i++ {
		n, err := NewMutexNode(NodeID(i), MutexConfig{
			System:   sys,
			Workload: MutexWorkload{Count: 1, Hold: time.Millisecond, Think: time.Millisecond},
			OnAcquire: func(id NodeID, at time.Duration) {
				if holding {
					t.Fatalf("mutual exclusion violated at %v", at)
				}
				holding = true
			},
			OnRelease: func(id NodeID, at time.Duration) { holding = false },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(NodeID(i), n); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(30 * time.Second)
	for _, n := range nodes {
		if !n.Done() {
			t.Fatal("workload incomplete")
		}
	}
}

// TestEndToEndRegister exercises the replicated register through the
// facade.
func TestEndToEndRegister(t *testing.T) {
	net := NewNetwork(WithSeed(7))
	store := HGridStore{H: NewHTGrid(4, 4).Hierarchy()}
	var results []RegisterResult
	var replicas []*Replica
	for i := 0; i < 16; i++ {
		var ops []RegisterOp
		if i == 0 {
			ops = []RegisterOp{{Kind: OpWrite, Value: "hello"}, {Kind: OpRead}}
		}
		r, err := NewReplica(NodeID(i), ReplicaConfig{
			Store:    store,
			Ops:      ops,
			OnResult: func(res RegisterResult) { results = append(results, res) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(NodeID(i), r); err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	for _, r := range replicas {
		if err := r.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(30 * time.Second)
	if len(results) != 2 || results[1].Value != "hello" {
		t.Fatalf("results %+v", results)
	}
}

// TestEndToEndReconfig drives a live configuration swap entirely through
// the facade: epoch-versioned replicas start on majority quorums, a
// ReconfigToken moves them to the h-T-grid mid-workload, and the cluster
// settles on the stable target config with every operation completing.
func TestEndToEndReconfig(t *testing.T) {
	initial := ClusterParams{Flavor: FlavorMajority, Members: MemberRange(0, 16)}
	members, err := ParseMembers("0-15")
	if err != nil {
		t.Fatal(err)
	}
	target := ClusterParams{Flavor: FlavorHTGrid, Rows: 4, Cols: 4, Members: members}

	net := NewNetwork(WithSeed(11))
	var results []RegisterResult
	var stores []*EpochStore
	var replicas []*Replica
	for i := 0; i < 16; i++ {
		es, err := NewEpochStore(16, initial)
		if err != nil {
			t.Fatal(err)
		}
		var ops []RegisterOp
		if i == 0 {
			ops = []RegisterOp{
				{Kind: OpWrite, Value: "pre"}, {Kind: OpRead},
				{Kind: OpWrite, Value: "post"}, {Kind: OpRead},
			}
		}
		r, err := NewReplica(NodeID(i), ReplicaConfig{
			Epochs:   es,
			Ops:      ops,
			OnResult: func(res RegisterResult) { results = append(results, res) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(NodeID(i), r); err != nil {
			t.Fatal(err)
		}
		stores = append(stores, es)
		replicas = append(replicas, r)
	}
	for _, r := range replicas {
		if err := r.Start(net); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.StartTimer(1, 5*time.Millisecond, ReconfigToken(target)); err != nil {
		t.Fatal(err)
	}
	net.Run(30 * time.Second)

	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("op %d failed: %v", r.OpID, r.Err)
		}
	}
	if results[3].Value != "post" {
		t.Fatalf("final read %q, want %q", results[3].Value, "post")
	}
	for i, es := range stores {
		if snap := es.Snapshot(); snap.Joint() || snap.Epoch != 3 || !snap.Cur.Equal(target) {
			t.Fatalf("replica %d did not settle on the target: %+v", i, snap)
		}
	}
}
