package hquorum_test

import (
	"fmt"
	"math/rand"
	"time"

	"hquorum"
)

// Build the paper's hierarchical triangle and inspect a quorum.
func ExampleNewHTriang() {
	sys := hquorum.NewHTriang(5)
	fmt.Println(sys.Name(), sys.Universe(), "processes, quorums of", sys.MinQuorumSize())

	rng := rand.New(rand.NewSource(7))
	q, _ := sys.Pick(rng, hquorum.AllNodes(sys.Universe()))
	fmt.Println("quorum size:", q.Count())
	// Output:
	// h-triang(5) 15 processes, quorums of 5
	// quorum size: 5
}

// Exact failure probabilities reproduce the paper's Table 2.
func ExampleFailureProbabilities() {
	sys := hquorum.NewHTriang(5)
	f := hquorum.FailureProbabilities(sys, []float64{0.1, 0.2, 0.3})
	fmt.Printf("%.6f %.6f %.6f\n", f[0], f[1], f[2])
	// Output:
	// 0.000677 0.016577 0.090712
}

// The h-T-grid tolerates failures with quorums as small as √n.
func ExampleNewHTGrid() {
	sys := hquorum.NewHTGrid(4, 4)
	fmt.Println("quorum sizes:", sys.MinQuorumSize(), "to", sys.MaxQuorumSize())

	// The top line alone is a quorum.
	live := hquorum.NewSet(16)
	for c := 0; c < 4; c++ {
		live.Add(c)
	}
	fmt.Println("top line available:", sys.Available(live))
	// Output:
	// quorum sizes: 4 to 7
	// top line available: true
}

// Lift a crash-model construction to a Byzantine quorum system (§7).
func ExampleNewByzantine() {
	byz, err := hquorum.NewByzantine(hquorum.NewHTriang(4), 1, hquorum.Dissemination)
	if err != nil {
		panic(err)
	}
	fmt.Println(byz.Universe(), "servers, overlap ≥", byz.Overlap())
	// Output:
	// 40 servers, overlap ≥ 2
}

// Compose coteries: majority-of-majorities is Kumar's HQS.
func ExampleCompose() {
	subs := make([]hquorum.System, 3)
	for i := range subs {
		subs[i] = hquorum.NewMajority(3)
	}
	c, err := hquorum.Compose(hquorum.NewMajority(3), subs)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Universe(), "nodes, quorums of", c.MinQuorumSize())

	nd, _ := hquorum.IsNonDominated(c)
	fmt.Println("non-dominated:", nd)
	// Output:
	// 9 nodes, quorums of 4
	// non-dominated: true
}

// Run distributed mutual exclusion over a quorum system on the simulated
// cluster.
func ExampleNewMutexNode() {
	net := hquorum.NewNetwork(hquorum.WithSeed(3))
	sys := hquorum.NewHTriang(3)

	entries := 0
	var nodes []*hquorum.MutexNode
	for i := 0; i < sys.Universe(); i++ {
		n, err := hquorum.NewMutexNode(hquorum.NodeID(i), hquorum.MutexConfig{
			System:    sys,
			Workload:  hquorum.MutexWorkload{Count: 1, Hold: time.Millisecond},
			OnAcquire: func(hquorum.NodeID, time.Duration) { entries++ },
		})
		if err != nil {
			panic(err)
		}
		if err := net.AddNode(hquorum.NodeID(i), n); err != nil {
			panic(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		if err := n.Start(net); err != nil {
			panic(err)
		}
	}
	net.Run(10 * time.Second)
	fmt.Println("critical sections:", entries)
	// Output:
	// critical sections: 6
}
